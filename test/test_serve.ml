(* Tests for the request/response core (Api), the ndetect-rpc/1 codec
   and the in-process analysis daemon (Serve). The daemon tests drive a
   real Unix-domain socket but stay in-process via Serve.start/stop —
   never Supervise.request_termination, whose flag is sticky and would
   poison every later supervised test in this binary. *)

module Api = Ndetect_harness.Api
module Rpc = Ndetect_harness.Rpc
module Serve = Ndetect_harness.Serve
module Driver = Ndetect_harness.Driver
module Supervise = Ndetect_util.Supervise
module Telemetry = Ndetect_util.Telemetry

(* rpc codec: qcheck round trips *)

let json_gen =
  let open QCheck.Gen in
  let any_byte_string = string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 24) in
  let finite_float =
    map
      (fun (f, integral) -> if integral then Float.round f else f)
      (pair (float_range (-1e9) 1e9) bool)
  in
  let scalar =
    oneof
      [
        return Rpc.Null;
        map (fun b -> Rpc.Bool b) bool;
        map (fun n -> Rpc.Int n)
          (frequency
             [ (4, small_signed_int); (1, oneofl [ min_int; max_int; 0 ]) ]);
        map (fun f -> Rpc.Float f) finite_float;
        map (fun s -> Rpc.Str s) any_byte_string;
      ]
  in
  let rec doc depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          ( 1,
            map (fun l -> Rpc.List l) (list_size (int_bound 4) (doc (depth - 1)))
          );
          ( 1,
            map
              (fun kvs -> Rpc.Obj kvs)
              (list_size (int_bound 4)
                 (pair any_byte_string (doc (depth - 1)))) );
        ]
  in
  doc 3

let json_arbitrary = QCheck.make ~print:Rpc.to_string json_gen

let prop_json_roundtrip =
  QCheck.Test.make ~count:500 ~name:"rpc json round trip" json_arbitrary
    (fun j -> Rpc.of_string (Rpc.to_string j) = Ok j)

let prop_escape_roundtrip =
  QCheck.Test.make ~count:500 ~name:"rpc string escaping round trip"
    (QCheck.make ~print:(Printf.sprintf "%S")
       QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 64)))
    (fun s -> Rpc.of_string ("\"" ^ Rpc.escape s ^ "\"") = Ok (Rpc.Str s))

(* Frames written back to back must read back as the same sequence of
   documents, regardless of payload contents (embedded newlines in
   escaped strings must never split a frame), then hit a clean EOF
   error. *)
let prop_framing_roundtrip =
  QCheck.Test.make ~count:100 ~name:"rpc framing round trip"
    (QCheck.make
       ~print:(fun docs -> String.concat " | " (List.map Rpc.to_string docs))
       QCheck.Gen.(list_size (int_range 1 5) json_gen))
    (fun docs ->
      let path = Filename.temp_file "ndetect-rpc" ".bin" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let oc = open_out_bin path in
          List.iter (fun d -> output_string oc (Rpc.frame d)) docs;
          close_out oc;
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () ->
              let read_back =
                List.map (fun _ -> Rpc.read_frame ic) docs
              in
              read_back = List.map (fun d -> Ok d) docs
              && Result.is_error (Rpc.read_frame ic))))

let test_rpc_rejects_oversized_frame () =
  let path = Filename.temp_file "ndetect-rpc" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      Printf.fprintf oc "%d\n" (Rpc.max_frame + 1);
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          Alcotest.(check bool) "oversized frame rejected" true
            (Result.is_error (Rpc.read_frame ic))))

(* request encoding *)

let full_request =
  Api.Request.make
    ~sections:[ Api.Request.Worst; Api.Request.Average; Api.Request.Average_def2 ]
    ~k:7 ~k2:3 ~nmax:4 ~seed:9 ~domains:2 ~kernel_backend:"portable"
    ~cache_dir:"/tmp/tables" ~deadline:2.5 ~label:"lion"
    (Api.Request.Suite "lion")

let test_request_roundtrip () =
  List.iter
    (fun req ->
      match Api.Request.of_json (Api.Request.to_json req) with
      | Error m -> Alcotest.fail ("round trip: " ^ m)
      | Ok back ->
        Alcotest.(check bool)
          ("request round trips: " ^ req.Api.Request.label)
          true (back = req))
    [
      full_request;
      Api.Request.make ~label:"defaults" (Api.Request.Suite "mc");
      Api.Request.make ~label:"inline"
        (Api.Request.Inline_bench "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n");
      Api.Request.make ~label:"file" (Api.Request.File "x.bench");
      Api.Request.make ~label:"sampled"
        ~universe:
          (Api.Request.Sampled
             { Api.Estimate.Spec.samples = 500; strata = 8; confidence = 0.9 })
        (Api.Request.Suite "mc");
    ]

(* The universe field round-trips for every validly constructible spec,
   not just hand-picked ones (the daemon's dedup fingerprint is the
   encoded request, so any encode/decode asymmetry would split or
   alias cache entries). *)
let prop_universe_roundtrip =
  QCheck.Test.make ~count:200 ~name:"request universe JSON round trip"
    (QCheck.make
       ~print:(fun (samples, strata, conf_mil) ->
         Printf.sprintf "samples=%d strata=%d confidence=%d/1000" samples
           strata conf_mil)
       QCheck.Gen.(
         triple (int_range 1 5000) (int_range 1 64) (int_range 1 999)))
    (fun (samples, strata, conf_mil) ->
      let universe =
        match
          Api.Estimate.Spec.make ~strata
            ~confidence:(float_of_int conf_mil /. 1000.0)
            ~samples ()
        with
        | Ok spec -> Api.Request.Sampled spec
        | Error _ -> Api.Request.Exhaustive
      in
      let req =
        Api.Request.make ~label:"prop" ~universe (Api.Request.Suite "mc")
      in
      match Api.Request.of_json (Api.Request.to_json req) with
      | Ok back -> back = req
      | Error _ -> false)

let test_request_of_json_errors () =
  Alcotest.(check bool) "non-object rejected" true
    (Result.is_error (Api.Request.of_json (Rpc.Str "nope")));
  Alcotest.(check bool) "bad section rejected" true
    (Result.is_error
       (Api.Request.of_json
          (Rpc.Obj
             [
               ("label", Rpc.Str "x");
               ("source", Rpc.Obj [ ("suite", Rpc.Str "lion") ]);
               ("sections", Rpc.List [ Rpc.Str "table9" ]);
             ])));
  let with_universe u =
    Api.Request.of_json
      (Rpc.Obj
         [
           ("label", Rpc.Str "x");
           ( "source",
             Rpc.Obj
               [ ("kind", Rpc.Str "suite"); ("value", Rpc.Str "lion") ] );
           ("universe", u);
         ])
  in
  (* The error cases below must fail on the universe field, not on an
     accidentally malformed envelope. *)
  (match with_universe Rpc.Null with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "envelope itself rejected: %s" m);
  let universe_error u =
    match with_universe u with
    | Ok _ -> false
    | Error m -> Helpers.contains_substring m "universe"
  in
  Alcotest.(check bool) "invalid sampled universe rejected" true
    (universe_error
       (Rpc.Obj
          [
            ("samples", Rpc.Int 0); ("strata", Rpc.Int 4);
            ("confidence", Rpc.Float 0.95);
          ]));
  Alcotest.(check bool) "confidence 1.0 rejected" true
    (universe_error
       (Rpc.Obj
          [
            ("samples", Rpc.Int 100); ("strata", Rpc.Int 4);
            ("confidence", Rpc.Float 1.0);
          ]));
  (* Old encoders omit the field entirely; both spellings of "not
     sampled" must decode to Exhaustive. *)
  (match with_universe Rpc.Null with
  | Ok req ->
    Alcotest.(check bool) "null universe is exhaustive" true
      (req.Api.Request.universe = Api.Request.Exhaustive)
  | Error m -> Alcotest.fail m)

let test_section_names () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        ("section name round trips: " ^ Api.Request.section_name s)
        true
        (Api.Request.section_of_name (Api.Request.section_name s) = Some s))
    [ Api.Request.Worst; Api.Request.Average; Api.Request.Average_def2 ];
  Alcotest.(check bool) "unknown section name" true
    (Api.Request.section_of_name "table9" = None)

(* options -> request lowering *)

let test_options_to_request () =
  let lower only =
    Driver.Options.to_request
      (Driver.Options.make ~only ~k:11 ~k2:5 ~seed:3
         ~timeout_per_circuit:1.5 ~table_cache:"tc" ())
      ~source:(Api.Request.Suite "lion") ~label:"lion"
  in
  (match lower "table2" with
  | Error m -> Alcotest.fail m
  | Ok req ->
    Alcotest.(check bool) "table2 is worst" true
      (req.Api.Request.sections = [ Api.Request.Worst ]);
    Alcotest.(check int) "k carried" 11 req.Api.Request.k;
    Alcotest.(check int) "k2 carried" 5 req.Api.Request.k2;
    Alcotest.(check int) "seed carried" 3 req.Api.Request.seed;
    Alcotest.(check bool) "deadline carried" true
      (req.Api.Request.deadline = Some 1.5);
    Alcotest.(check (option string)) "cache carried" (Some "tc")
      req.Api.Request.cache_dir);
  (match lower "table5" with
  | Ok req ->
    Alcotest.(check bool) "table5 is average" true
      (req.Api.Request.sections = [ Api.Request.Average ])
  | Error m -> Alcotest.fail m);
  (match lower "table6" with
  | Ok req ->
    Alcotest.(check bool) "table6 is def2" true
      (req.Api.Request.sections = [ Api.Request.Average_def2 ])
  | Error m -> Alcotest.fail m);
  (match lower "all" with
  | Ok req ->
    Alcotest.(check bool) "all three sections" true
      (req.Api.Request.sections
      = [ Api.Request.Worst; Api.Request.Average; Api.Request.Average_def2 ])
  | Error m -> Alcotest.fail m);
  List.iter
    (fun only ->
      Alcotest.(check bool)
        (only ^ " has no request form")
        true
        (Result.is_error (lower only)))
    [ "table1"; "table4"; "figure2" ];
  (* Sampled-universe lowering: the three flags become the request's
     universe, with defaults filled in and invalid combinations
     becoming structured errors. *)
  let lower_sampled ?samples ?strata ?confidence () =
    Driver.Options.to_request
      (Driver.Options.make ~only:"table2" ?samples ?strata ?confidence ())
      ~source:(Api.Request.Suite "lion") ~label:"lion"
  in
  (match lower_sampled ~samples:300 ~strata:4 ~confidence:0.99 () with
  | Error m -> Alcotest.fail m
  | Ok req ->
    Alcotest.(check bool) "sampled universe lowered" true
      (req.Api.Request.universe
      = Api.Request.Sampled
          { Api.Estimate.Spec.samples = 300; strata = 4; confidence = 0.99 }));
  (match lower_sampled ~samples:300 () with
  | Error m -> Alcotest.fail m
  | Ok req ->
    Alcotest.(check bool) "strata and confidence default" true
      (match req.Api.Request.universe with
      | Api.Request.Sampled
          { Api.Estimate.Spec.samples = 300; strata = 16; confidence = c } ->
        c = Api.Estimate.Spec.default_confidence
      | _ -> false));
  (match lower_sampled () with
  | Error m -> Alcotest.fail m
  | Ok req ->
    Alcotest.(check bool) "no samples is exhaustive" true
      (req.Api.Request.universe = Api.Request.Exhaustive));
  List.iter
    (fun (label, req) ->
      Alcotest.(check bool) label true (Result.is_error req))
    [
      ("samples below strata rejected",
       lower_sampled ~samples:3 ~strata:8 ());
      ("confidence 1.0 rejected", lower_sampled ~samples:10 ~confidence:1.0 ());
      ("strata without samples rejected", lower_sampled ~strata:4 ());
      ("confidence without samples rejected",
       lower_sampled ~confidence:0.9 ());
    ]

(* in-process daemon *)

let fresh_dir () =
  let dir = Filename.temp_file "ndetect-serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let rm_rf dir =
  Array.iter
    (fun entry -> try Sys.remove (Filename.concat dir entry) with _ -> ())
    (Sys.readdir dir);
  try Unix.rmdir dir with _ -> ()

let with_server ?(cache = false) ?(queue_capacity = 16) f =
  let dir = fresh_dir () in
  let cache_dir =
    if cache then begin
      let c = Filename.concat dir "tables" in
      Unix.mkdir c 0o755;
      Some c
    end
    else None
  in
  let config =
    {
      (Serve.default_config ~socket:(Filename.concat dir "s")) with
      Serve.cache_dir;
      queue_capacity;
      quiet = true;
    }
  in
  match Serve.start config with
  | Error m ->
    rm_rf dir;
    Alcotest.fail ("server start: " ^ m)
  | Ok t ->
    Fun.protect
      ~finally:(fun () ->
        Supervise.set_injection [];
        Serve.stop t;
        Option.iter rm_rf cache_dir;
        rm_rf dir)
      (fun () -> f config.Serve.socket)

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (match Rpc.read_frame ic with
  | Ok hello ->
    Alcotest.(check (option string)) "hello speaks the protocol"
      (Some Rpc.protocol)
      (Option.bind (Rpc.member "protocol" hello) Rpc.to_str)
  | Error m -> Alcotest.fail ("hello: " ^ m));
  (fd, ic, oc)

let disconnect (fd, _, oc) =
  (try flush oc with _ -> ());
  try Unix.close fd with _ -> ()

let send_request (_, _, oc) req =
  Rpc.write_frame oc
    (Rpc.Obj
       [ ("type", Rpc.Str "request"); ("request", Api.Request.to_json req) ])

type reply = {
  render : string;
  remote_failures : int;
  trace : string list;
  failure_spans : string list list;
      (* one entry per failure frame: its open-span stack *)
  overloaded : bool;
}

let read_reply (_, ic, _) =
  let trace = ref [] in
  let failure_spans = ref [] in
  let rec loop () =
    match Rpc.read_frame ic with
    | Error m -> Alcotest.fail ("reply: " ^ m)
    | Ok j -> (
      match Option.bind (Rpc.member "type" j) Rpc.to_str with
      | Some "trace" ->
        (match Option.bind (Rpc.member "line" j) Rpc.to_str with
        | Some line -> trace := line :: !trace
        | None -> ());
        loop ()
      | Some "failure" ->
        let spans =
          match Rpc.member "spans" j with
          | Some (Rpc.List l) -> List.filter_map Rpc.to_str l
          | _ -> []
        in
        failure_spans := spans :: !failure_spans;
        loop ()
      | Some "done" ->
        {
          render =
            Option.value ~default:""
              (Option.bind (Rpc.member "render" j) Rpc.to_str);
          remote_failures =
            Option.value ~default:0
              (Option.bind (Rpc.member "failures" j) Rpc.to_int);
          trace = List.rev !trace;
          failure_spans = List.rev !failure_spans;
          overloaded = false;
        }
      | Some "overloaded" ->
        {
          render = "";
          remote_failures = 0;
          trace = [];
          failure_spans = [];
          overloaded = true;
        }
      | Some "error" ->
        Alcotest.fail
          ("server error: "
          ^ Option.value ~default:"?"
              (Option.bind (Rpc.member "message" j) Rpc.to_str))
      | Some _ | None -> loop ())
  in
  loop ()

let one_shot socket req =
  let conn = connect socket in
  Fun.protect
    ~finally:(fun () -> disconnect conn)
    (fun () ->
      send_request conn req;
      read_reply conn)

let has_span trace needle =
  List.exists (fun line -> Helpers.contains_substring line needle) trace

let span_count trace =
  List.length
    (List.filter
       (fun line -> Helpers.contains_substring line "\"type\":\"begin\"")
       trace)

let quick_request ?deadline ?cache_dir label =
  Api.Request.make ~sections:[ Api.Request.Worst ] ~nmax:3 ?deadline
    ?cache_dir ~label (Api.Request.Suite "lion")

(* The core acceptance property: the daemon's render is byte-identical
   to running the same request locally, because both print
   Api.Response.render of the same value. *)
let test_serve_matches_local_run () =
  with_server (fun socket ->
      let req =
        Api.Request.make
          ~sections:[ Api.Request.Worst; Api.Request.Average ]
          ~k:5 ~nmax:3 ~label:"lion" (Api.Request.Suite "lion")
      in
      let reply = one_shot socket req in
      match Api.run req with
      | Error m -> Alcotest.fail m
      | Ok local ->
        Alcotest.(check string) "daemon render byte-identical to local"
          (Api.Response.render local) reply.render;
        Alcotest.(check int) "clean run" 0 reply.remote_failures;
        Alcotest.(check bool) "trace streamed" true (span_count reply.trace > 0))

let test_serve_stats_frame () =
  with_server (fun socket ->
      ignore (one_shot socket (quick_request "lion"));
      let conn = connect socket in
      Fun.protect
        ~finally:(fun () -> disconnect conn)
        (fun () ->
          let _, ic, oc = conn in
          Rpc.write_frame oc (Rpc.Obj [ ("type", Rpc.Str "stats") ]);
          match Rpc.read_frame ic with
          | Error m -> Alcotest.fail m
          | Ok j ->
            let counters =
              match Rpc.member "counters" j with
              | Some (Rpc.Obj members) -> members
              | _ -> Alcotest.fail "stats frame has no counters object"
            in
            Alcotest.(check bool) "requests counted" true
              (match List.assoc_opt "serve.requests" counters with
              | Some (Rpc.Int n) -> n >= 1
              | _ -> false)))

(* Two identical requests in flight: the second joins the first's
   computation. Exactly one of the two traces carries spans; the
   joiner's is the schema-valid empty document. *)
let test_serve_dedups_concurrent_identical_requests () =
  with_server ~cache:true (fun socket ->
      (match Supervise.parse_injection_spec "stall=analyze:lion:0.6" with
      | Ok plan -> Supervise.set_injection plan
      | Error m -> Alcotest.fail m);
      let joins_before = Telemetry.counter_value "serve.dedup_joins" in
      let req = quick_request "lion" in
      let a = connect socket and b = connect socket in
      Fun.protect
        ~finally:(fun () ->
          Supervise.set_injection [];
          disconnect a;
          disconnect b)
        (fun () ->
          send_request a req;
          send_request b req;
          let ra = read_reply a and rb = read_reply b in
          Alcotest.(check string) "joiner got the owner's answer" ra.render
            rb.render;
          Alcotest.(check int) "both clean" 0
            (ra.remote_failures + rb.remote_failures);
          Alcotest.(check int) "one dedup join counted" (joins_before + 1)
            (Telemetry.counter_value "serve.dedup_joins");
          let spans = List.sort compare [ span_count ra.trace; span_count rb.trace ] in
          Alcotest.(check bool) "exactly one computation traced" true
            (List.hd spans = 0 && List.nth spans 1 > 0)))

(* Deadline from admission: a stalled unit comes back as a structured
   timeout row; the daemon survives and answers the next request. *)
let test_serve_deadline_is_structured () =
  with_server (fun socket ->
      (match Supervise.parse_injection_spec "stall=analyze:dl:10" with
      | Ok plan -> Supervise.set_injection plan
      | Error m -> Alcotest.fail m);
      let reply =
        Fun.protect
          ~finally:(fun () -> Supervise.set_injection [])
          (fun () ->
            one_shot socket
              {
                (quick_request ~deadline:0.4 "dl") with
                Api.Request.source = Api.Request.Suite "lion";
              })
      in
      Alcotest.(check int) "one failure row" 1 reply.remote_failures;
      Alcotest.(check bool) "render names the timeout" true
        (Helpers.contains_substring reply.render "timed out");
      (* The failure frame carries the span stack that was open when
         the deadline unwound — the budget went into the analysis. *)
      (match reply.failure_spans with
      | [ spans ] ->
        Alcotest.(check bool) "timeout reports its open span stack" true
          (List.exists
             (fun s -> Helpers.contains_substring s "analyze")
             spans)
      | other ->
        Alcotest.fail
          (Printf.sprintf "expected 1 failure frame, got %d"
             (List.length other)));
      (* The daemon is still alive and clean for the next request. *)
      let after = one_shot socket (quick_request "lion") in
      Alcotest.(check int) "daemon survived the timeout" 0
        after.remote_failures)

(* Clean-then-warm: with a cache directory, the second identical
   (sequential, so not deduplicated) request answers from the resident
   table — its trace has no simulation or build spans at all. *)
let test_serve_warm_request_simulates_nothing () =
  with_server ~cache:true (fun socket ->
      let req = quick_request "lion" in
      let cold = one_shot socket req in
      let warm = one_shot socket req in
      Alcotest.(check string) "warm answer identical" cold.render warm.render;
      Alcotest.(check bool) "cold run built the table" true
        (has_span cold.trace "\"name\":\"table.build\"");
      Alcotest.(check bool) "warm run still traced" true
        (span_count warm.trace > 0);
      List.iter
        (fun forbidden ->
          Alcotest.(check bool)
            (forbidden ^ " absent from warm trace")
            true
            (not (has_span warm.trace forbidden)))
        [ "\"name\":\"table.build\""; "\"name\":\"table.sim" ])

(* A full admission queue answers overloaded immediately instead of
   queueing unbounded work. *)
let test_serve_overload_is_structured () =
  with_server ~queue_capacity:1 (fun socket ->
      (match Supervise.parse_injection_spec "stall=analyze:ov:1.2" with
      | Ok plan -> Supervise.set_injection plan
      | Error m -> Alcotest.fail m);
      let a = connect socket and b = connect socket and c = connect socket in
      Fun.protect
        ~finally:(fun () ->
          Supervise.set_injection [];
          disconnect a;
          disconnect b;
          disconnect c)
        (fun () ->
          send_request a (quick_request "ov");
          (* Let the executor dequeue the stalled request so the queue
             is empty, then fill it and overflow it with two distinct
             requests (identical ones would dedup, not queue). Their
             connection threads race, so either may be the one shed —
             but with a stalled executor and a one-slot queue, exactly
             one of them must be. *)
          Unix.sleepf 0.3;
          send_request b (quick_request "ov-b");
          send_request c (quick_request "ov-c");
          let rb = read_reply b in
          let rc = read_reply c in
          let ra = read_reply a in
          Alcotest.(check bool) "exactly one request shed" true
            (rb.overloaded <> rc.overloaded);
          let admitted = if rb.overloaded then rc else rb in
          Alcotest.(check int) "queued and running requests answered" 0
            (ra.remote_failures + admitted.remote_failures);
          Alcotest.(check bool) "overload counted" true
            (Telemetry.counter_value "serve.overloaded" >= 1)))

let () =
  Alcotest.run "serve"
    [
      ( "rpc",
        [
          Helpers.qcheck prop_json_roundtrip;
          Helpers.qcheck prop_escape_roundtrip;
          Helpers.qcheck prop_framing_roundtrip;
          Alcotest.test_case "oversized frame rejected" `Quick
            test_rpc_rejects_oversized_frame;
        ] );
      ( "request",
        [
          Alcotest.test_case "json round trip" `Quick test_request_roundtrip;
          Helpers.qcheck prop_universe_roundtrip;
          Alcotest.test_case "of_json errors" `Quick
            test_request_of_json_errors;
          Alcotest.test_case "section names" `Quick test_section_names;
          Alcotest.test_case "options lowering" `Quick
            test_options_to_request;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "matches local run" `Quick
            test_serve_matches_local_run;
          Alcotest.test_case "stats frame" `Quick test_serve_stats_frame;
          Alcotest.test_case "dedups concurrent identical requests" `Quick
            test_serve_dedups_concurrent_identical_requests;
          Alcotest.test_case "deadline is a structured row" `Quick
            test_serve_deadline_is_structured;
          Alcotest.test_case "warm request simulates nothing" `Quick
            test_serve_warm_request_simulates_nothing;
          Alcotest.test_case "overload is structured" `Quick
            test_serve_overload_is_structured;
        ] );
    ]
