(* Tests for the transition-fault generalization and the diagnosis
   dictionary. *)

module Netlist = Ndetect_circuit.Netlist
module Line = Ndetect_circuit.Line
module Stuck = Ndetect_faults.Stuck
module Bridge = Ndetect_faults.Bridge
module Transition = Ndetect_faults.Transition
module Eval = Ndetect_sim.Eval
module Good = Ndetect_sim.Good
module Fault_sim = Ndetect_sim.Fault_sim
module Transition_analysis = Ndetect_core.Transition_analysis
module Worst_case = Ndetect_core.Worst_case
module Bitvec = Ndetect_util.Bitvec
module Dictionary = Ndetect_diag.Dictionary
module Example = Ndetect_suite.Example
module Registry = Ndetect_suite.Registry

(* --- transition faults ----------------------------------------------- *)

let test_transition_enumeration () =
  let net = Example.circuit () in
  let faults = Transition.enumerate net in
  Alcotest.(check int) "two per line" 22 (Array.length faults);
  let f = faults.(0) in
  Alcotest.(check string) "label" "1/STR" (Transition.to_string net f);
  let stuck = Transition.as_stuck f in
  Alcotest.(check bool) "STR mimics sa0" false stuck.Stuck.value;
  Alcotest.(check bool) "STR initializes to 0" false
    (Transition.initialization_value f)

(* The factorized pair count equals a brute-force enumeration of the pair
   universe with independent scalar definitions. *)
let test_transition_factorization () =
  let net = Example.circuit () in
  let good = Good.compute net in
  let analysis = Transition_analysis.compute net in
  let universe = Netlist.universe_size net in
  for i = 0 to Transition_analysis.target_count analysis - 1 do
    let fault = Transition_analysis.target_fault analysis i in
    let stuck = Transition.as_stuck fault in
    let driver = Line.driver net fault.Transition.line in
    let init_value = Transition.initialization_value fault in
    let brute = ref 0 in
    for v1 = 0 to universe - 1 do
      let initializes =
        Bool.equal (Eval.eval_vector net v1).(driver) init_value
      in
      if initializes then
        for v2 = 0 to universe - 1 do
          if Fault_sim.detects_stuck good stuck ~vector:v2 then incr brute
        done
    done;
    Alcotest.(check int)
      (Transition.to_string net fault)
      !brute
      (Transition_analysis.target_n analysis i)
  done

let test_transition_detectable_only () =
  let net = Example.circuit () in
  let analysis = Transition_analysis.compute net in
  (* All 22 transition faults on the example are detectable except those
     whose stuck counterpart is undetectable or never initializable; on
     this circuit every line takes both values and every collapsed-class
     member is detectable, so all 22 remain. *)
  Alcotest.(check int) "22 targets" 22
    (Transition_analysis.target_count analysis)

let test_transition_nmin_vs_stuck () =
  (* With the same untargeted set, the transition analysis on the example
     gives nmin(g) at least as large as the stuck-at analysis: the
     adversary has at least as much escape room per target. *)
  let net = Example.circuit () in
  let stuck_table = Ndetect_core.Detection_table.build net in
  let stuck_worst = Worst_case.compute stuck_table in
  let transition = Transition_analysis.compute net in
  Alcotest.(check int) "same untargeted count"
    (Ndetect_core.Detection_table.untargeted_count stuck_table)
    (Transition_analysis.untargeted_count transition);
  for gj = 0 to Transition_analysis.untargeted_count transition - 1 do
    Alcotest.(check bool) "transition nmin >= stuck nmin" true
      (Transition_analysis.nmin transition gj >= Worst_case.nmin stuck_worst gj)
  done

let test_transition_percentages () =
  let net = Registry.circuit (Option.get (Registry.find "lion")) in
  let analysis = Transition_analysis.compute net in
  let p1 = Transition_analysis.percent_below analysis 1 in
  let p_huge = Transition_analysis.percent_below analysis 1_000_000 in
  Alcotest.(check bool) "percentages in range" true (p1 >= 0.0 && p1 <= 100.0);
  Alcotest.(check bool) "monotone" true (p1 <= p_huge);
  match Transition_analysis.max_finite_nmin analysis with
  | Some m ->
    Alcotest.(check (float 1e-6)) "saturates at max" 100.0
      (Transition_analysis.percent_below analysis m)
  | None -> Alcotest.fail "expected finite nmin"

(* --- diagnosis -------------------------------------------------------- *)

let mc_dictionary () =
  let net = Registry.circuit (Option.get (Registry.find "mc")) in
  let faults = Stuck.collapse net in
  let vectors = Array.init 16 (fun i -> i * 2) in
  (net, faults, Dictionary.build net ~vectors ~faults)

let test_dictionary_self_diagnosis () =
  let _, faults, dict = mc_dictionary () in
  (* Each modeled fault's own response must rank it (or an
     equally-responding equivalent) first with score 1. *)
  Array.iteri
    (fun i _ ->
      let observed = Dictionary.response dict i in
      if Array.exists (fun m -> m <> 0) observed then begin
        match Dictionary.diagnose dict ~observed with
        | top :: _ ->
          Alcotest.(check (float 1e-9)) "top score 1" 1.0 top.Dictionary.score;
          Alcotest.(check (array int)) "top response matches"
            observed
            (Dictionary.response dict top.Dictionary.fault_index)
        | [] -> Alcotest.fail "no verdicts"
      end)
    faults

let test_dictionary_respond_consistency () =
  let _, faults, dict = mc_dictionary () in
  Array.iteri
    (fun i f ->
      Alcotest.(check (array int)) "respond_stuck = stored response"
        (Dictionary.response dict i)
        (Dictionary.respond_stuck dict f))
    faults

let test_dictionary_bridge_diagnosis_example () =
  let net = Example.circuit () in
  let faults = Stuck.collapse net in
  let vectors = Array.init 16 Fun.id in
  let dict = Dictionary.build net ~vectors ~faults in
  let bridges = Bridge.enumerate net in
  (* g0 = (9,0,10,1): forces line 9 to 1 on {6,7}. The closest stuck-at
     explanation is 1/1 (input 1 of the victim gate, failing at the same
     output on a superset of tests), so the top candidate must sit in the
     victim's structural neighbourhood: its fanin or fanout cone. *)
  let observed = Dictionary.respond_bridge dict bridges.(0) in
  (match Dictionary.diagnose dict ~observed with
  | top :: _ ->
    let f = Dictionary.fault dict top.Dictionary.fault_index in
    let driver = Line.driver net f.Stuck.line in
    let victim = bridges.(0).Bridge.victim in
    let neighbourhood =
      (Netlist.transitive_fanin net victim).(driver)
      || (Netlist.transitive_fanout net victim).(driver)
    in
    Alcotest.(check bool)
      (Printf.sprintf "top candidate %s near victim"
         (Stuck.to_string net f))
      true neighbourhood;
    Alcotest.(check bool) "score dominates an unrelated fault" true
      (top.Dictionary.score >= 0.5)
  | [] -> Alcotest.fail "no verdicts")

let test_dictionary_distinguishability_grows () =
  let net = Example.circuit () in
  let faults = Stuck.collapse net in
  let small = Dictionary.build net ~vectors:[| 6 |] ~faults in
  let large = Dictionary.build net ~vectors:(Array.init 16 Fun.id) ~faults in
  Alcotest.(check bool) "more tests distinguish more" true
    (Dictionary.distinguishable_pairs large
    > Dictionary.distinguishable_pairs small);
  let n = Array.length faults in
  Alcotest.(check bool) "bounded by all pairs" true
    (Dictionary.distinguishable_pairs large <= n * (n - 1) / 2)

let test_dictionary_rejects_mismatched_observation () =
  let _, _, dict = mc_dictionary () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Dictionary.diagnose dict ~observed:[| 0 |]);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "models"
    [
      ( "transition",
        [
          Alcotest.test_case "enumeration" `Quick test_transition_enumeration;
          Alcotest.test_case "pair-count factorization" `Quick
            test_transition_factorization;
          Alcotest.test_case "detectable targets" `Quick
            test_transition_detectable_only;
          Alcotest.test_case "nmin vs stuck-at" `Quick
            test_transition_nmin_vs_stuck;
          Alcotest.test_case "percentages" `Quick test_transition_percentages;
        ] );
      ( "diagnosis",
        [
          Alcotest.test_case "self diagnosis" `Quick
            test_dictionary_self_diagnosis;
          Alcotest.test_case "respond consistency" `Quick
            test_dictionary_respond_consistency;
          Alcotest.test_case "bridge defect on example" `Quick
            test_dictionary_bridge_diagnosis_example;
          Alcotest.test_case "distinguishability grows" `Quick
            test_dictionary_distinguishability_grows;
          Alcotest.test_case "mismatched observation" `Quick
            test_dictionary_rejects_mismatched_observation;
        ] );
    ]
