(* Tests for the telemetry subsystem: the counter/gauge registry, nested
   timing spans, the in-memory and JSONL sinks, and the error-annotation
   hand-off to the supervisor.

   The registry is process-wide and monotone, so counter assertions are
   delta-based (sample before/after) rather than absolute; sink tests
   detach their sinks in a [Fun.protect] so a failing test cannot leave
   spans enabled for the rest of the binary. *)

module Telemetry = Ndetect_util.Telemetry
module Parallel = Ndetect_util.Parallel

let with_memory_sink f =
  let sink = Telemetry.Memory.attach () in
  Fun.protect ~finally:(fun () -> Telemetry.Memory.detach sink) (fun () ->
      f sink)

(* counters and gauges *)

let test_counter_basics () =
  let c = Telemetry.Counter.create "test.basics" in
  Alcotest.(check string) "name" "test.basics" (Telemetry.Counter.name c);
  let v0 = Telemetry.Counter.value c in
  Telemetry.Counter.incr c;
  Telemetry.Counter.add c 41;
  Alcotest.(check int) "incr + add" (v0 + 42) (Telemetry.Counter.value c);
  (* create is idempotent: the same name is the same cell. *)
  let c' = Telemetry.Counter.create "test.basics" in
  Telemetry.Counter.incr c';
  Alcotest.(check int) "same cell" (v0 + 43) (Telemetry.Counter.value c);
  Alcotest.(check int) "registry lookup" (v0 + 43)
    (Telemetry.counter_value "test.basics")

let test_counter_unknown () =
  Alcotest.(check int) "unregistered reads 0" 0
    (Telemetry.counter_value "test.never_created")

let test_gauge () =
  let g = Telemetry.Gauge.create "test.gauge" in
  Telemetry.Gauge.set g 4;
  Alcotest.(check int) "set" 4 (Telemetry.Gauge.value g);
  Telemetry.Gauge.set g 2;
  Alcotest.(check int) "last write wins" 2 (Telemetry.Gauge.value g);
  Alcotest.(check bool) "in snapshot" true
    (List.mem_assoc "test.gauge" (Telemetry.counters ()))

let test_counter_atomicity_across_domains () =
  let c = Telemetry.Counter.create "test.atomicity" in
  let v0 = Telemetry.Counter.value c in
  let adds_per_item = 1000 in
  let items = Array.init 64 Fun.id in
  ignore
    (Parallel.map_array ~domains:4
       (fun _ ->
         for _ = 1 to adds_per_item do
           Telemetry.Counter.incr c
         done)
       items);
  Alcotest.(check int) "no lost updates"
    (v0 + (Array.length items * adds_per_item))
    (Telemetry.Counter.value c)

let test_snapshot_sorted () =
  ignore (Telemetry.Counter.create "test.zz");
  ignore (Telemetry.Counter.create "test.aa");
  let names = List.map fst (Telemetry.counters ()) in
  Alcotest.(check bool) "sorted by name" true
    (List.sort String.compare names = names)

let test_delta () =
  let d =
    Telemetry.delta
      ~before:[ ("a", 1); ("b", 5); ("c", 0) ]
      ~after:[ ("a", 1); ("b", 9); ("c", 2); ("d", 3) ]
  in
  Alcotest.(check bool) "unchanged dropped" true (not (List.mem_assoc "a" d));
  Alcotest.(check int) "changed diffed" 4 (List.assoc "b" d);
  Alcotest.(check int) "zero base" 2 (List.assoc "c" d);
  Alcotest.(check int) "absent from before counts from 0" 3
    (List.assoc "d" d)

(* spans: disabled path *)

let test_disabled_is_transparent () =
  Alcotest.(check bool) "no sink registered" false (Telemetry.enabled ());
  Alcotest.(check (list string)) "no open spans" [] (Telemetry.current_spans ());
  let r = Telemetry.with_span "test.off" (fun () -> 7) in
  Alcotest.(check int) "value through" 7 r;
  Alcotest.(check (list string)) "still no spans" []
    (Telemetry.current_spans ())

(* spans: memory sink *)

let test_span_nesting () =
  with_memory_sink (fun sink ->
      Alcotest.(check bool) "enabled" true (Telemetry.enabled ());
      let inner_stack = ref [] in
      Telemetry.with_span "outer" (fun () ->
          Telemetry.with_span "inner" (fun () ->
              inner_stack := Telemetry.current_spans ()));
      Alcotest.(check (list string)) "stack innermost first"
        [ "inner"; "outer" ] !inner_stack;
      Alcotest.(check (list string)) "stack unwinds" []
        (Telemetry.current_spans ());
      match Telemetry.Memory.spans sink with
      | [ (inner, d_inner); (outer, d_outer) ] ->
        Alcotest.(check string) "child completes first" "inner"
          inner.Telemetry.name;
        Alcotest.(check string) "parent completes last" "outer"
          outer.Telemetry.name;
        Alcotest.(check bool) "parent link" true
          (inner.Telemetry.parent = Some outer.Telemetry.id);
        Alcotest.(check bool) "root has no parent" true
          (outer.Telemetry.parent = None);
        Alcotest.(check bool) "ids increase" true
          (inner.Telemetry.id > outer.Telemetry.id);
        Alcotest.(check bool) "durations non-negative" true
          (d_inner >= 0.0 && d_outer >= 0.0);
        Alcotest.(check bool) "parent covers child" true
          (d_outer >= d_inner)
      | spans ->
        Alcotest.fail
          (Printf.sprintf "expected 2 completed spans, got %d"
             (List.length spans)))

let test_span_args_and_render () =
  with_memory_sink (fun sink ->
      Telemetry.with_span "render.root" (fun () ->
          for _ = 1 to 3 do
            Telemetry.with_span "render.child"
              ~args:[ ("k", "v") ]
              (fun () -> ())
          done);
      (match Telemetry.Memory.spans sink with
      | (child, _) :: _ ->
        Alcotest.(check bool) "args recorded" true
          (child.Telemetry.args = [ ("k", "v") ])
      | [] -> Alcotest.fail "no spans collected");
      let table = Telemetry.Memory.render sink in
      List.iter
        (fun needle ->
          Alcotest.(check bool) (needle ^ " in profile") true
            (Helpers.contains_substring table needle))
        [ "render.root"; "render.child"; "3" ])

(* A qcheck-driven random span tree: the generated list gives the
   branching factor at each depth. Whatever the shape: every span
   completes exactly once with a unique id and a non-negative duration,
   every non-root's parent is a span that began earlier, and a parent's
   duration covers the sum of its direct children. *)
let prop_span_tree =
  QCheck.Test.make ~name:"random span tree invariants" ~count:25
    QCheck.(small_list (int_bound 2))
    (fun arities ->
      with_memory_sink (fun sink ->
          let arr = Array.of_list arities in
          let rec build depth =
            Telemetry.with_span (Printf.sprintf "d%d" depth) (fun () ->
                if depth < Array.length arr then
                  for _ = 1 to arr.(depth) do
                    build (depth + 1)
                  done)
          in
          build 0;
          let spans = Telemetry.Memory.spans sink in
          let ids = List.map (fun (s, _) -> s.Telemetry.id) spans in
          List.length ids = List.length (List.sort_uniq Int.compare ids)
          && List.for_all
               (fun (s, d) ->
                 d >= 0.0
                 &&
                 match s.Telemetry.parent with
                 | None -> true
                 | Some p ->
                   p < s.Telemetry.id
                   && List.exists (fun (q, _) -> q.Telemetry.id = p) spans)
               spans
          && List.for_all
               (fun (parent, d_parent) ->
                 let child_sum =
                   List.fold_left
                     (fun acc (s, d) ->
                       if s.Telemetry.parent = Some parent.Telemetry.id then
                         acc +. d
                       else acc)
                     0.0 spans
                 in
                 d_parent +. 1e-9 >= child_sum)
               spans))

(* spans: exceptions *)

exception Boom

let test_span_exception_propagates () =
  with_memory_sink (fun sink ->
      (try
         Telemetry.with_span "outer" (fun () ->
             Telemetry.with_span "inner" (fun () -> raise Boom))
       with Boom -> ());
      Alcotest.(check (list string)) "stack unwound" []
        (Telemetry.current_spans ());
      Alcotest.(check int) "both spans closed" 2
        (List.length (Telemetry.Memory.spans sink)))

let test_error_spans () =
  with_memory_sink (fun _sink ->
      match
        Telemetry.with_span "outer" (fun () ->
            Telemetry.with_span "inner" (fun () -> raise Boom))
      with
      | () -> Alcotest.fail "expected Boom"
      | exception Boom ->
        Alcotest.(check (list string)) "innermost first"
          [ "inner"; "outer" ] (Telemetry.error_spans Boom);
        Alcotest.(check (list string)) "consuming" []
          (Telemetry.error_spans Boom))

let test_error_spans_unknown_exn () =
  Alcotest.(check (list string)) "never-seen exception" []
    (Telemetry.error_spans Not_found)

(* jsonl sink *)

let with_temp_trace f =
  let path = Filename.temp_file "ndetect-trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let read_lines path =
  In_channel.with_open_bin path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "")

let count_substring line needle =
  if Helpers.contains_substring line needle then 1 else 0

let test_jsonl_stream () =
  with_temp_trace (fun path ->
      let sink = Telemetry.Jsonl.attach ~path in
      Fun.protect ~finally:(fun () -> Telemetry.Jsonl.detach sink)
        (fun () ->
          Telemetry.with_span "a" (fun () ->
              Telemetry.with_span "b" ~args:[ ("x", "1") ] (fun () -> ()));
          Telemetry.with_span "c" (fun () -> ()));
      Telemetry.Jsonl.detach sink;
      let lines = read_lines path in
      (match lines with
      | meta :: _ ->
        Alcotest.(check bool) "meta first" true
          (Helpers.contains_substring meta "\"type\":\"meta\""
          && Helpers.contains_substring meta "ndetect-trace/1")
      | [] -> Alcotest.fail "empty trace");
      let count needle =
        List.fold_left (fun acc l -> acc + count_substring l needle) 0 lines
      in
      Alcotest.(check int) "three begins" 3 (count "\"type\":\"begin\"");
      Alcotest.(check int) "begins balance ends" (count "\"type\":\"begin\"")
        (count "\"type\":\"end\"");
      Alcotest.(check int) "one counters footer" 1
        (count "\"type\":\"counters\"");
      Alcotest.(check bool) "args serialized" true
        (count "\"args\":{\"x\":\"1\"}" = 1);
      (match List.rev lines with
      | last :: _ ->
        Alcotest.(check bool) "counters last" true
          (Helpers.contains_substring last "\"type\":\"counters\"")
      | [] -> assert false))

let test_jsonl_escaping () =
  with_temp_trace (fun path ->
      let sink = Telemetry.Jsonl.attach ~path in
      Fun.protect ~finally:(fun () -> Telemetry.Jsonl.detach sink)
        (fun () ->
          Telemetry.with_span "quote\"back\\slash"
            ~args:[ ("k", "line\nbreak") ]
            (fun () -> ()));
      Telemetry.Jsonl.detach sink;
      let lines = read_lines path in
      Alcotest.(check bool) "escaped quote" true
        (List.exists
           (fun l -> Helpers.contains_substring l "quote\\\"back\\\\slash")
           lines);
      Alcotest.(check bool) "escaped newline kept on one line" true
        (List.exists
           (fun l -> Helpers.contains_substring l "line\\nbreak")
           lines))

(* clock *)

let test_now_monotone () =
  let rec loop i last =
    if i < 1000 then begin
      let t = Telemetry.now () in
      Alcotest.(check bool) "non-decreasing" true (t >= last);
      loop (i + 1) t
    end
  in
  loop 0 (Telemetry.now ())

let () =
  Alcotest.run "telemetry"
    [
      ( "registry",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "unknown counter" `Quick test_counter_unknown;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "atomicity across domains" `Quick
            test_counter_atomicity_across_domains;
          Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
          Alcotest.test_case "delta" `Quick test_delta;
        ] );
      ( "spans",
        [
          Alcotest.test_case "disabled transparent" `Quick
            test_disabled_is_transparent;
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "args and render" `Quick
            test_span_args_and_render;
          Helpers.qcheck prop_span_tree;
          Alcotest.test_case "exception propagates" `Quick
            test_span_exception_propagates;
          Alcotest.test_case "error spans" `Quick test_error_spans;
          Alcotest.test_case "error spans unknown" `Quick
            test_error_spans_unknown_exn;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "stream" `Quick test_jsonl_stream;
          Alcotest.test_case "escaping" `Quick test_jsonl_escaping;
        ] );
      ("clock", [ Alcotest.test_case "monotone" `Quick test_now_monotone ]);
    ]
