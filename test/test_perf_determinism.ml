(* Determinism and regression coverage for the parallel Procedure 1 and
   the cone-cached fault simulator:

   - [Procedure1.run] must produce bit-identical outcomes for every
     [domains] value (the K sets each own a pre-split RNG stream, so the
     chunking cannot matter) and across two runs with the same seed.
   - The incrementally maintained chain-length counters must agree with
     the chains themselves: re-deriving every Definition-2 / Multi_output
     chain from the insertion-order test set must reproduce [chain_def2].
   - The per-domain cone cache in [Fault_sim] must be invisible: cached
     detection sets equal freshly-built-cone results (and the naive
     oracle) on random netlists. *)

module Detection_table = Ndetect_core.Detection_table
module Procedure1 = Ndetect_core.Procedure1
module Definition2 = Ndetect_core.Definition2
module Bitvec = Ndetect_util.Bitvec
module Stuck = Ndetect_faults.Stuck
module Good = Ndetect_sim.Good
module Fault_sim = Ndetect_sim.Fault_sim
module Naive = Ndetect_sim.Naive
module Example = Ndetect_suite.Example

let example_table =
  let t = lazy (Detection_table.build (Example.circuit ())) in
  fun () -> Lazy.force t

let config_of mode seed =
  { Procedure1.seed; set_count = 12; nmax = 3; mode }

(* Everything observable about an outcome, as one comparable value. *)
let fingerprint table outcome =
  let cfg = Procedure1.config outcome in
  let f_count = Detection_table.target_count table in
  let report = Procedure1.report_faults outcome in
  let sets =
    List.init cfg.Procedure1.set_count (fun k ->
        let tests = Procedure1.test_set outcome ~k in
        let per_fault =
          List.init f_count (fun fi ->
              ( Procedure1.detection_count_def1 outcome ~k ~fi,
                Procedure1.chain_def2 outcome ~k ~fi,
                Procedure1.output_mask outcome ~k ~fi ))
        in
        (tests, per_fault))
  in
  let detected =
    List.init cfg.Procedure1.nmax (fun i ->
        Array.to_list
          (Array.map
             (fun gj -> Procedure1.detected_count outcome ~n:(i + 1) ~gj)
             report))
  in
  (sets, detected)

let mode_name = function
  | Procedure1.Definition1 -> "Definition1"
  | Procedure1.Definition2 -> "Definition2"
  | Procedure1.Multi_output -> "Multi_output"

let test_domains_invariant mode () =
  let table = example_table () in
  let config = config_of mode 7 in
  let reference =
    fingerprint table (Procedure1.run ~domains:1 table config)
  in
  List.iter
    (fun domains ->
      let outcome = Procedure1.run ~domains table config in
      Alcotest.(check bool)
        (Printf.sprintf "%s: domains=%d == domains=1" (mode_name mode)
           domains)
        true
        (fingerprint table outcome = reference))
    [ 2; 4 ]

let test_repeat_run_identical mode () =
  let table = example_table () in
  let config = config_of mode 19 in
  let a = fingerprint table (Procedure1.run table config) in
  let b = fingerprint table (Procedure1.run table config) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: same seed, same outcome" (mode_name mode))
    true (a = b)

(* Chain-length counters (satellite of the perf PR) never drift from the
   chains: replay each final test set in insertion order and rebuild the
   counted chains with plain [List.length], then compare. *)

let replay_def2_chain table def2 ~nmax ~fi tests =
  let tf = Detection_table.target_set table fi in
  let chain = ref [] in
  List.iter
    (fun v ->
      if
        Bitvec.get tf v
        && List.length !chain < nmax
        && Definition2.chain_extend def2 ~fi ~chain:!chain v
      then chain := v :: !chain)
    tests;
  List.rev !chain

let test_def2_chain_regression () =
  let table = example_table () in
  let config = config_of Procedure1.Definition2 23 in
  let outcome = Procedure1.run table config in
  let def2 = Definition2.create table in
  let f_count = Detection_table.target_count table in
  for k = 0 to config.Procedure1.set_count - 1 do
    let tests = Procedure1.test_set outcome ~k in
    for fi = 0 to f_count - 1 do
      let expected =
        replay_def2_chain table def2 ~nmax:config.Procedure1.nmax ~fi tests
      in
      Alcotest.(check (list int))
        (Printf.sprintf "def2 chain k=%d fi=%d" k fi)
        expected
        (Procedure1.chain_def2 outcome ~k ~fi)
    done
  done

let observing_mask output_sets v =
  let mask = ref 0 in
  Array.iteri
    (fun o set -> if Bitvec.get set v then mask := !mask lor (1 lsl o))
    output_sets;
  !mask

let test_multi_output_chain_regression () =
  let table = example_table () in
  let config = config_of Procedure1.Multi_output 31 in
  let outcome = Procedure1.run table config in
  let f_count = Detection_table.target_count table in
  for k = 0 to config.Procedure1.set_count - 1 do
    let tests = Procedure1.test_set outcome ~k in
    for fi = 0 to f_count - 1 do
      let tf = Detection_table.target_set table fi in
      let output_sets = Detection_table.target_output_sets table ~fi in
      let chain = ref [] and chain_mask = ref 0 and out_mask = ref 0 in
      List.iter
        (fun v ->
          if Bitvec.get tf v then begin
            let m = observing_mask output_sets v in
            out_mask := !out_mask lor m;
            if
              List.length !chain < config.Procedure1.nmax
              && m land lnot !chain_mask <> 0
            then begin
              chain := v :: !chain;
              chain_mask := !chain_mask lor m
            end
          end)
        tests;
      Alcotest.(check (list int))
        (Printf.sprintf "multi-output chain k=%d fi=%d" k fi)
        (List.rev !chain)
        (Procedure1.chain_def2 outcome ~k ~fi);
      Alcotest.(check int)
        (Printf.sprintf "output mask k=%d fi=%d" k fi)
        !out_mask
        (Procedure1.output_mask outcome ~k ~fi)
    done
  done

(* The cone cache keyed by (Good.id, seed) must never change results:
   a cold call (fresh Good, fresh cache entries), a warm call (cached
   cones), and a second Good instance all match the naive oracle. *)
let prop_cone_cache_transparent =
  QCheck.Test.make ~name:"cone cache: cold == warm == naive" ~count:25
    Helpers.circuit_arbitrary
    (Helpers.apply_circuit (fun net ->
         let faults = Stuck.collapse net in
         let good = Good.compute net in
         let good' = Good.compute net in
         Array.for_all
           (fun f ->
             let cold = Fault_sim.stuck_detection_set good f in
             let warm = Fault_sim.stuck_detection_set good f in
             let fresh = Fault_sim.stuck_detection_set good' f in
             let oracle = Naive.stuck_detection_set net f in
             Bitvec.equal cold oracle
             && Bitvec.equal warm oracle
             && Bitvec.equal fresh oracle)
           faults))

let () =
  let modes =
    [ Procedure1.Definition1; Procedure1.Definition2; Procedure1.Multi_output ]
  in
  Alcotest.run "perf determinism"
    [
      ( "procedure1 domains",
        List.map
          (fun mode ->
            Alcotest.test_case
              (Printf.sprintf "%s invariant under domains" (mode_name mode))
              `Slow
              (test_domains_invariant mode))
          modes
        @ List.map
            (fun mode ->
              Alcotest.test_case
                (Printf.sprintf "%s repeat run identical" (mode_name mode))
                `Quick
                (test_repeat_run_identical mode))
            modes );
      ( "chain regression",
        [
          Alcotest.test_case "definition2 chains from replay" `Quick
            test_def2_chain_regression;
          Alcotest.test_case "multi-output chains from replay" `Quick
            test_multi_output_chain_regression;
        ] );
      ( "cone cache",
        [ Helpers.qcheck prop_cone_cache_transparent ] );
    ]
