(* A final widening pass: pinned values and cross-model consistency
   checks that earlier suites did not cover. *)

module Netlist = Ndetect_circuit.Netlist
module Line = Ndetect_circuit.Line
module Scoap = Ndetect_circuit.Scoap
module Equiv = Ndetect_circuit.Equiv
module Stuck = Ndetect_faults.Stuck
module Wired = Ndetect_faults.Wired
module Bridge = Ndetect_faults.Bridge
module Good = Ndetect_sim.Good
module Fault_sim = Ndetect_sim.Fault_sim
module Bitvec = Ndetect_util.Bitvec
module Detection_table = Ndetect_core.Detection_table
module Worst_case = Ndetect_core.Worst_case
module Procedure1 = Ndetect_core.Procedure1
module Definition2 = Ndetect_core.Definition2
module Test_eval = Ndetect_core.Test_eval
module Partition = Ndetect_core.Partition
module Transition_analysis = Ndetect_core.Transition_analysis
module Lfsr = Ndetect_tgen.Lfsr
module Registry = Ndetect_suite.Registry
module Example = Ndetect_suite.Example

let c17 () = Registry.circuit (Option.get (Registry.find "c17"))

(* --- pinned c17 values ----------------------------------------------- *)

let test_c17_scoap () =
  let net = c17 () in
  let s = Scoap.compute net in
  let node name = Option.get (Netlist.find_by_name net name) in
  (* NAND(1,3): cc0 = sum cc1 + 1 = 3; cc1 = min cc0 + 1 = 2. *)
  Alcotest.(check int) "g10 cc0" 3 (Scoap.cc0 s (node "10"));
  Alcotest.(check int) "g10 cc1" 2 (Scoap.cc1 s (node "10"));
  (* POs observe for free. *)
  Alcotest.(check int) "g22 co" 0 (Scoap.co s (node "22"));
  (* Input 3 fans out to both first-level NANDs. *)
  Alcotest.(check bool) "input 3 has branches" true
    (Line.has_branches net (node "3"))

let test_c17_wired_model () =
  let net = c17 () in
  let table =
    Detection_table.build ~model:(Detection_table.Wired Wired.Wired_and) net
  in
  (* 6 NAND gates, all candidate nodes; non-feedback pairs only. *)
  let nodes = Bridge.candidate_nodes net in
  Alcotest.(check int) "six candidates" 6 (Array.length nodes);
  Alcotest.(check bool) "wired faults exist" true
    (Detection_table.untargeted_count table > 0);
  let worst = Worst_case.compute table in
  Alcotest.(check bool) "analysis completes with finite max" true
    (Worst_case.max_finite_nmin worst <> None)

let test_c17_transition () =
  let net = c17 () in
  let t = Transition_analysis.compute net in
  (* Every line of c17 takes both values and every stuck fault is
     detectable, so all transition faults are targets. *)
  let lines = Line.enumerate net in
  Alcotest.(check int) "all transition faults detectable"
    (2 * Array.length lines)
    (Transition_analysis.target_count t);
  match Transition_analysis.max_finite_nmin t with
  | Some m -> Alcotest.(check bool) "finite guarantee" true (m >= 1)
  | None -> Alcotest.fail "expected finite nmin"

(* --- cross-model consistency ----------------------------------------- *)

let test_test_eval_def2_matches_definition2 () =
  (* Test_eval's Definition-2 counting must agree with the core module's
     greedy count on identical inputs. *)
  let net = Example.circuit () in
  let table = Detection_table.build net in
  let def2 = Definition2.create table in
  let vectors = [| 4; 6; 12; 13; 3; 9 |] in
  let ev = Test_eval.evaluate net ~vectors in
  let counts = Test_eval.detections_def2 ev in
  for fi = 0 to Detection_table.target_count table - 1 do
    let detecting =
      Array.to_list vectors
      |> List.filter (fun v ->
             Bitvec.get (Detection_table.target_set table fi) v)
    in
    let expected, _ = Definition2.count_greedy def2 ~fi detecting in
    Alcotest.(check int)
      (Detection_table.target_label table fi)
      expected counts.(fi)
  done

let test_procedure1_modes_deterministic () =
  let table = Detection_table.build (Example.circuit ()) in
  List.iter
    (fun mode ->
      let run () =
        Procedure1.run table
          { Procedure1.seed = 77; set_count = 5; nmax = 3; mode }
      in
      let a = run () and b = run () in
      for k = 0 to 4 do
        Alcotest.(check (list int)) "same sets" (Procedure1.test_set a ~k)
          (Procedure1.test_set b ~k)
      done)
    [ Procedure1.Definition1; Procedure1.Definition2;
      Procedure1.Multi_output ]

let test_partition_supports () =
  let net = Example.circuit () in
  (* Gate 9's cone uses inputs 1 and 2 only. *)
  let g9 = Option.get (Netlist.find_by_name net "9") in
  let support = Partition.support_of_outputs net [| g9 |] in
  Alcotest.(check (list string)) "support of gate 9" [ "1"; "2" ]
    (Array.to_list (Array.map (Netlist.name net) support));
  let block = Partition.extract net ~outputs:[| g9 |] in
  Alcotest.(check int) "2-input block" 2
    (Netlist.input_count block.Partition.subcircuit)

let test_wired_detectability_vs_fourway () =
  (* On the example circuit the wired-OR bridge between gates 9 and 10 is
     detected exactly when the two lines disagree (both being POs). *)
  let net = Example.circuit () in
  let good = Good.compute net in
  let g9 = Option.get (Netlist.find_by_name net "9") in
  let g10 = Option.get (Netlist.find_by_name net "10") in
  let wired_or =
    Fault_sim.wired_detection_set good
      { Wired.a = g9; b = g10; semantics = Wired.Wired_or }
  in
  let wired_and =
    Fault_sim.wired_detection_set good
      { Wired.a = g9; b = g10; semantics = Wired.Wired_and }
  in
  Alcotest.(check bool) "wired-or = wired-and on two POs" true
    (Bitvec.equal wired_or wired_and);
  (* And both equal the union of the pair's four-way faults. *)
  let bridges = Bridge.enumerate net in
  let union = Bitvec.create 16 in
  Array.iter
    (fun (b : Bridge.t) ->
      if
        (b.victim = g9 && b.aggressor = g10)
        || (b.victim = g10 && b.aggressor = g9)
      then Bitvec.union_in_place union (Fault_sim.bridge_detection_set good b))
    bridges;
  Alcotest.(check bool) "union of four-way = wired" true
    (Bitvec.equal union wired_or)

let test_lfsr_all_supported_widths_construct () =
  for w = 2 to 24 do
    let lfsr = Lfsr.create ~width:w () in
    let v = Lfsr.next lfsr in
    Alcotest.(check bool)
      (Printf.sprintf "width %d" w)
      true
      (v > 0 && v < 1 lsl w);
    Alcotest.(check bool) "taps non-empty" true (Lfsr.taps w <> [])
  done

let test_equiv_across_formats () =
  (* bench -> blif -> bench round trip stays equivalent. *)
  let net = c17 () in
  let via_blif = Ndetect_netparse.Blif.parse (Ndetect_netparse.Blif.print net ()) in
  (match Equiv.check net via_blif with
  | Equiv.Equivalent -> ()
  | r -> Alcotest.failf "not equivalent: %a" Equiv.pp_result r);
  let via_bench =
    Ndetect_netparse.Bench_format.parse (Ndetect_netparse.Bench_format.print net)
  in
  Alcotest.(check bool) "bench roundtrip" true (Equiv.equivalent net via_bench)

let () =
  Alcotest.run "more-coverage"
    [
      ( "c17-pinned",
        [
          Alcotest.test_case "scoap" `Quick test_c17_scoap;
          Alcotest.test_case "wired model" `Quick test_c17_wired_model;
          Alcotest.test_case "transition analysis" `Quick test_c17_transition;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "test_eval def2 = core def2" `Quick
            test_test_eval_def2_matches_definition2;
          Alcotest.test_case "all modes deterministic" `Quick
            test_procedure1_modes_deterministic;
          Alcotest.test_case "partition supports" `Quick
            test_partition_supports;
          Alcotest.test_case "wired vs four-way on POs" `Quick
            test_wired_detectability_vs_fourway;
          Alcotest.test_case "lfsr widths" `Quick
            test_lfsr_all_supported_widths_construct;
          Alcotest.test_case "equiv across formats" `Quick
            test_equiv_across_formats;
        ] );
    ]
