module Gate = Ndetect_circuit.Gate
module Netlist = Ndetect_circuit.Netlist
module Line = Ndetect_circuit.Line
module Dot = Ndetect_circuit.Dot
module Word = Ndetect_logic.Word
module Ternary = Ndetect_logic.Ternary
module Example = Ndetect_suite.Example

let build_example () = Example.circuit ()

let test_builder_validation () =
  let b = Netlist.Builder.create () in
  Alcotest.check_raises "no inputs"
    (Invalid_argument "Netlist.Builder.finalize: no primary inputs")
    (fun () -> ignore (Netlist.Builder.finalize b));
  let b = Netlist.Builder.create () in
  let i0 = Netlist.Builder.add_input b ~name:"a" in
  Alcotest.check_raises "no outputs"
    (Invalid_argument "Netlist.Builder.finalize: no primary outputs")
    (fun () -> ignore (Netlist.Builder.finalize b));
  Alcotest.(check bool) "bad arity rejected" true
    (try
       ignore
         (Netlist.Builder.add_gate b ~kind:Gate.And ~fanins:[| i0 |]
            ~name:"g");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown fanin rejected" true
    (try
       ignore
         (Netlist.Builder.add_gate b ~kind:Gate.Not ~fanins:[| 99 |]
            ~name:"g");
       false
     with Invalid_argument _ -> true)

let test_inputs_before_gates () =
  let b = Netlist.Builder.create () in
  let i0 = Netlist.Builder.add_input b ~name:"a" in
  ignore (Netlist.Builder.add_gate b ~kind:Gate.Not ~fanins:[| i0 |] ~name:"n");
  Alcotest.(check bool) "input after gate rejected" true
    (try
       ignore (Netlist.Builder.add_input b ~name:"b");
       false
     with Invalid_argument _ -> true)

let test_example_structure () =
  let net = build_example () in
  Alcotest.(check int) "inputs" 4 (Netlist.input_count net);
  Alcotest.(check int) "nodes" 7 (Netlist.node_count net);
  Alcotest.(check int) "universe" 16 (Netlist.universe_size net);
  let stats = Netlist.stats net in
  Alcotest.(check int) "gates" 3 stats.Netlist.gates_n;
  Alcotest.(check int) "multi-input" 3 stats.Netlist.multi_input_gates_n;
  Alcotest.(check int) "depth" 1 stats.Netlist.depth;
  Alcotest.(check int) "literals" 6 stats.Netlist.literals_n

let test_example_fanouts () =
  let net = build_example () in
  let input2 = Option.get (Netlist.find_by_name net "2") in
  let input1 = Option.get (Netlist.find_by_name net "1") in
  Alcotest.(check int) "input 2 fans out twice" 2
    (Netlist.fanout_count net input2);
  Alcotest.(check int) "input 1 fans out once" 1
    (Netlist.fanout_count net input1)

let test_example_lines () =
  let net = build_example () in
  let lines = Line.enumerate net in
  Alcotest.(check int) "11 lines" 11 (Array.length lines);
  let strings = Array.to_list (Array.map (Line.to_string net) lines) in
  Alcotest.(check (list string)) "canonical order"
    [ "1"; "2"; "3"; "4"; "2>9"; "2>10"; "3>10"; "3>11"; "9"; "10"; "11" ]
    strings;
  (* Display numbers reproduce the paper's 1..11 numbering. *)
  Alcotest.(check int) "branch 2>9 is line 5" 5
    (Line.display_number net lines.(4));
  Alcotest.(check int) "stem 9 is line 9" 9
    (Line.display_number net lines.(8))

let test_line_driver () =
  let net = build_example () in
  let lines = Line.enumerate net in
  let input2 = Option.get (Netlist.find_by_name net "2") in
  Alcotest.(check int) "branch 5 driven by input 2" input2
    (Line.driver net lines.(4))

let test_topo_and_levels () =
  let net = build_example () in
  let topo = Netlist.topo_order net in
  let pos = Array.make (Netlist.node_count net) 0 in
  Array.iteri (fun idx id -> pos.(id) <- idx) topo;
  Array.iter
    (fun id ->
      Array.iter
        (fun f ->
          Alcotest.(check bool) "fanin precedes gate" true (pos.(f) < pos.(id)))
        (Netlist.fanins net id))
    topo;
  Alcotest.(check int) "max level" 1 (Netlist.max_level net)

let test_transitive_fanout () =
  let net = build_example () in
  let input2 = Option.get (Netlist.find_by_name net "2") in
  let g9 = Option.get (Netlist.find_by_name net "9") in
  let g11 = Option.get (Netlist.find_by_name net "11") in
  let reach = Netlist.transitive_fanout net input2 in
  Alcotest.(check bool) "2 reaches 9" true reach.(g9);
  Alcotest.(check bool) "2 does not reach 11" false reach.(g11);
  let cone = Netlist.fanout_cone_order net input2 in
  Alcotest.(check int) "cone size" 3 (Array.length cone);
  Alcotest.(check int) "cone starts at source" input2 cone.(0)

let test_transitive_fanin () =
  let net = build_example () in
  let g9 = Option.get (Netlist.find_by_name net "9") in
  let fanin = Netlist.transitive_fanin net g9 in
  let input1 = Option.get (Netlist.find_by_name net "1") in
  let input3 = Option.get (Netlist.find_by_name net "3") in
  Alcotest.(check bool) "1 in fanin of 9" true fanin.(input1);
  Alcotest.(check bool) "3 not in fanin of 9" false fanin.(input3)

let test_universe_limit () =
  let b = Netlist.Builder.create () in
  let ids =
    Array.init 25 (fun i ->
        Netlist.Builder.add_input b ~name:(Printf.sprintf "i%d" i))
  in
  let g =
    Netlist.Builder.add_gate b ~kind:Gate.Or
      ~fanins:[| ids.(0); ids.(1) |]
      ~name:"g"
  in
  Netlist.Builder.set_outputs b [| g |];
  let net = Netlist.Builder.finalize b in
  Alcotest.(check bool) "over 24 inputs rejected" true
    (try
       ignore (Netlist.universe_size net);
       false
     with Invalid_argument _ -> true)

let test_gate_eval_kinds () =
  let t = [| true; true; false |] in
  Alcotest.(check bool) "and" false (Gate.eval_bool Gate.And t);
  Alcotest.(check bool) "nand" true (Gate.eval_bool Gate.Nand t);
  Alcotest.(check bool) "or" true (Gate.eval_bool Gate.Or t);
  Alcotest.(check bool) "nor" false (Gate.eval_bool Gate.Nor t);
  Alcotest.(check bool) "xor of two ones" false
    (Gate.eval_bool Gate.Xor [| true; true |]);
  Alcotest.(check bool) "xnor" true (Gate.eval_bool Gate.Xnor [| true; true |]);
  Alcotest.(check bool) "not" false (Gate.eval_bool Gate.Not [| true |]);
  Alcotest.(check bool) "buf" true (Gate.eval_bool Gate.Buf [| true |]);
  Alcotest.(check bool) "const0" false (Gate.eval_bool Gate.Const0 [||]);
  Alcotest.(check bool) "const1" true (Gate.eval_bool Gate.Const1 [||])

(* Cross-domain consistency: word and ternary evaluation agree with the
   boolean one lane by lane / on binary values. *)
let prop_eval_consistency =
  QCheck.Test.make ~name:"gate eval agrees across domains" ~count:500
    QCheck.(
      make
        ~print:(fun (k, bits) ->
          Printf.sprintf "%s %s" (Gate.to_string Helpers.gate_kinds.(k))
            (String.concat ""
               (List.map (fun b -> if b then "1" else "0") bits)))
        QCheck.Gen.(
          pair
            (int_bound (Array.length Helpers.gate_kinds - 1))
            (list_size (int_range 1 5) bool)))
    (fun (k, bits) ->
      let kind = Helpers.gate_kinds.(k) in
      let fanins = Array.of_list bits in
      let n = Array.length fanins in
      QCheck.assume (Gate.arity_ok kind n);
      let expected = Gate.eval_bool kind fanins in
      let words =
        Array.map (fun b -> if b then Word.ones else Word.zeroes) fanins
      in
      let word_result = Gate.eval_word kind words in
      let terns = Array.map Ternary.of_bool fanins in
      let tern_result = Gate.eval_ternary kind terns in
      Word.get word_result 0 = expected
      && Ternary.equal tern_result (Ternary.of_bool expected))

let test_dot_export () =
  let net = build_example () in
  let dot = Dot.to_dot net in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  (* 6 edges in the example. *)
  let edges =
    String.split_on_char '\n' dot
    |> List.filter (fun l -> Helpers.contains_substring l "->")
  in
  Alcotest.(check int) "edges" 6 (List.length edges)

module Equiv = Ndetect_circuit.Equiv
module Random_circuit = Ndetect_suite.Random_circuit

let test_equiv_self () =
  let net = build_example () in
  Alcotest.(check bool) "self equivalent" true (Equiv.equivalent net net)

let test_equiv_counterexample () =
  (* AND vs OR of the same inputs: differs first at vector 01. *)
  let mk kind =
    let b = Netlist.Builder.create () in
    let a = Netlist.Builder.add_input b ~name:"a" in
    let c = Netlist.Builder.add_input b ~name:"c" in
    let y = Netlist.Builder.add_gate b ~kind ~fanins:[| a; c |] ~name:"y" in
    Netlist.Builder.set_outputs b [| y |];
    Netlist.Builder.finalize b
  in
  match Equiv.check (mk Gate.And) (mk Gate.Or) with
  | Equiv.Counterexample { vector; output; left; right } ->
    Alcotest.(check int) "first diff vector" 1 vector;
    Alcotest.(check int) "output" 0 output;
    Alcotest.(check bool) "left" false left;
    Alcotest.(check bool) "right" true right
  | Equiv.Equivalent | Equiv.Interface_mismatch _ ->
    Alcotest.fail "expected counterexample"

let test_equiv_interface_mismatch () =
  let net = build_example () in
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_input b ~name:"a" in
  let y = Netlist.Builder.add_gate b ~kind:Gate.Not ~fanins:[| a |] ~name:"y" in
  Netlist.Builder.set_outputs b [| y |];
  let other = Netlist.Builder.finalize b in
  (match Equiv.check net other with
  | Equiv.Interface_mismatch _ -> ()
  | Equiv.Equivalent | Equiv.Counterexample _ -> Alcotest.fail "expected mismatch")

let prop_equiv_multilevel =
  QCheck.Test.make ~name:"equiv validates multilevel decomposition"
    ~count:30 Helpers.circuit_arbitrary
    (Helpers.apply_circuit (fun net ->
         Equiv.equivalent net
           (Ndetect_synth.Multilevel.decompose ~max_fanin:3 net)))

let test_random_circuit_profiles () =
  let profile =
    { Random_circuit.allow_xor = false; max_arity = 2; extra_outputs = 0 }
  in
  let net = Random_circuit.generate ~profile ~seed:4 ~inputs:3 ~gates:12 () in
  Array.iter
    (fun g ->
      Alcotest.(check bool) "arity <= 2" true
        (Array.length (Netlist.fanins net g) <= 2);
      match Netlist.kind net g with
      | Gate.Xor | Gate.Xnor -> Alcotest.fail "xor generated"
      | Gate.Input | Gate.Const0 | Gate.Const1 | Gate.Buf | Gate.Not
      | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
        ())
    (Netlist.gate_ids net);
  Alcotest.(check int) "single output" 1 (Array.length (Netlist.outputs net))

(* Fanout-free-region partition on the paper's example circuit: x1 and
   x4 have a single fanout each, so they fold into their consuming
   gate's region; x2 and x3 fan out twice and the three gates are
   outputs, so all five are region roots. *)
let test_example_ffr () =
  let net = build_example () in
  let part = Netlist.ffr_partition net in
  (* ids: 0..3 = x1..x4, 4 = "9" (AND x1 x2), 5 = "10", 6 = "11". *)
  Alcotest.(check (array int))
    "roots" [| 1; 2; 4; 5; 6 |] part.Netlist.ffr_roots;
  Alcotest.(check (array int))
    "root of each node" [| 4; 1; 2; 6; 4; 5; 6 |] part.Netlist.ffr_root;
  Alcotest.(check bool) "x1 not a root" false (Netlist.ffr_is_root net 0);
  Alcotest.(check bool) "x2 a root" true (Netlist.ffr_is_root net 1)

let prop_ffr_partition =
  QCheck.Test.make ~name:"ffr partition is consistent" ~count:100
    Helpers.circuit_arbitrary
    (Helpers.apply_circuit (fun net ->
         let part = Netlist.ffr_partition net in
         let root = part.Netlist.ffr_root in
         let n = Netlist.node_count net in
         for id = 0 to n - 1 do
           let is_root =
             Netlist.is_output net id || Netlist.fanout_count net id <> 1
           in
           if Netlist.ffr_is_root net id <> is_root then
             QCheck.Test.fail_reportf "node %d: ffr_is_root mismatch" id;
           if is_root <> (root.(id) = id) then
             QCheck.Test.fail_reportf "node %d: root fixpoint mismatch" id;
           if not is_root then begin
             (* A non-root has exactly one consumer; effects must reach
                the root through it. *)
             let consumer, _ = (Netlist.fanouts net id).(0) in
             if root.(id) <> root.(consumer) then
               QCheck.Test.fail_reportf "node %d: root differs from consumer"
                 id
           end
         done;
         (* ffr_roots is exactly the ascending list of fixpoints. *)
         let expected =
           List.filter (fun id -> root.(id) = id)
             (List.init n (fun id -> id))
         in
         part.Netlist.ffr_roots = Array.of_list expected))

let test_random_circuit_deterministic () =
  let a = Random_circuit.generate ~seed:9 ~inputs:4 ~gates:10 () in
  let b = Random_circuit.generate ~seed:9 ~inputs:4 ~gates:10 () in
  Alcotest.(check bool) "same circuit" true (Equiv.equivalent a b)

let () =
  Alcotest.run "circuit"
    [
      ( "builder",
        [
          Alcotest.test_case "validation" `Quick test_builder_validation;
          Alcotest.test_case "inputs before gates" `Quick
            test_inputs_before_gates;
          Alcotest.test_case "universe limit" `Quick test_universe_limit;
        ] );
      ( "example",
        [
          Alcotest.test_case "structure" `Quick test_example_structure;
          Alcotest.test_case "fanouts" `Quick test_example_fanouts;
          Alcotest.test_case "lines" `Quick test_example_lines;
          Alcotest.test_case "line driver" `Quick test_line_driver;
          Alcotest.test_case "topo and levels" `Quick test_topo_and_levels;
          Alcotest.test_case "transitive fanout" `Quick
            test_transitive_fanout;
          Alcotest.test_case "transitive fanin" `Quick test_transitive_fanin;
        ] );
      ( "ffr",
        [
          Alcotest.test_case "example partition" `Quick test_example_ffr;
          Helpers.qcheck prop_ffr_partition;
        ] );
      ( "gates",
        [
          Alcotest.test_case "truth tables" `Quick test_gate_eval_kinds;
          Helpers.qcheck prop_eval_consistency;
        ] );
      ("dot", [ Alcotest.test_case "export" `Quick test_dot_export ]);
      ( "equiv",
        [
          Alcotest.test_case "self" `Quick test_equiv_self;
          Alcotest.test_case "counterexample" `Quick
            test_equiv_counterexample;
          Alcotest.test_case "interface mismatch" `Quick
            test_equiv_interface_mismatch;
          Helpers.qcheck prop_equiv_multilevel;
        ] );
      ( "random-circuit",
        [
          Alcotest.test_case "profiles" `Quick test_random_circuit_profiles;
          Alcotest.test_case "deterministic" `Quick
            test_random_circuit_deterministic;
        ] );
    ]
