module Ternary = Ndetect_logic.Ternary
module Word = Ndetect_logic.Word

let ternary = Alcotest.testable Ternary.pp Ternary.equal

let all3 = [ Ternary.Zero; Ternary.One; Ternary.X ]

let test_ternary_tables () =
  Alcotest.check ternary "0 and X" Ternary.Zero
    (Ternary.and_ Ternary.Zero Ternary.X);
  Alcotest.check ternary "1 and X" Ternary.X
    (Ternary.and_ Ternary.One Ternary.X);
  Alcotest.check ternary "1 or X" Ternary.One
    (Ternary.or_ Ternary.One Ternary.X);
  Alcotest.check ternary "0 or X" Ternary.X
    (Ternary.or_ Ternary.Zero Ternary.X);
  Alcotest.check ternary "X xor 1" Ternary.X
    (Ternary.xor Ternary.X Ternary.One);
  Alcotest.check ternary "not X" Ternary.X (Ternary.not_ Ternary.X)

let test_ternary_consistent_with_bool () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let check name op bop =
            match Ternary.to_bool_opt a, Ternary.to_bool_opt b with
            | Some ba, Some bb ->
              Alcotest.check ternary name
                (Ternary.of_bool (bop ba bb))
                (op a b)
            | None, (Some _ | None) | Some _, None -> ()
          in
          check "and" Ternary.and_ ( && );
          check "or" Ternary.or_ ( || );
          check "xor" Ternary.xor ( <> ))
        all3)
    all3

let test_ternary_monotone () =
  (* Refining an X input can only refine (never flip) the output. *)
  let ops = [ Ternary.and_; Ternary.or_; Ternary.xor ] in
  List.iter
    (fun op ->
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              let out = op a b in
              List.iter
                (fun a' ->
                  if Ternary.refines a' a then
                    let out' = op a' b in
                    Alcotest.(check bool) "monotone" true
                      (Ternary.refines out' out))
                all3)
            all3)
        all3)
    ops

let test_de_morgan () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.check ternary "de morgan"
            (Ternary.not_ (Ternary.and_ a b))
            (Ternary.or_ (Ternary.not_ a) (Ternary.not_ b)))
        all3)
    all3

let test_common () =
  Alcotest.check ternary "common 1 1" Ternary.One
    (Ternary.common Ternary.One Ternary.One);
  Alcotest.check ternary "common 1 0" Ternary.X
    (Ternary.common Ternary.One Ternary.Zero);
  Alcotest.check ternary "common X X" Ternary.X
    (Ternary.common Ternary.X Ternary.X);
  Alcotest.check ternary "common 0 X" Ternary.X
    (Ternary.common Ternary.Zero Ternary.X)

let test_chars () =
  List.iter
    (fun v ->
      Alcotest.check ternary "roundtrip" v (Ternary.of_char (Ternary.to_char v)))
    all3;
  Alcotest.check_raises "bad char" (Invalid_argument "Ternary.of_char: '2'")
    (fun () -> ignore (Ternary.of_char '2'))

let test_word_masks () =
  Alcotest.(check int) "ones count" Word.width (Word.count Word.ones);
  Alcotest.(check int) "mask_low 5" 5 (Word.count (Word.mask_low 5));
  Alcotest.(check int) "lognot" (Word.width - 3)
    (Word.count (Word.lognot (Word.mask_low 3)))

let test_word_batches () =
  Alcotest.(check int) "16 vectors 1 batch" 1 (Word.batches ~universe:16);
  Alcotest.(check int) "62 vectors 1 batch" 1 (Word.batches ~universe:62);
  Alcotest.(check int) "63 vectors 2 batches" 2 (Word.batches ~universe:63);
  Alcotest.(check int) "batch width full" 62
    (Word.batch_width ~universe:100 ~batch:0);
  Alcotest.(check int) "batch width tail" 38
    (Word.batch_width ~universe:100 ~batch:1);
  Alcotest.(check int) "batch width beyond" 0
    (Word.batch_width ~universe:100 ~batch:2)

let test_word_input_pattern () =
  (* 4 inputs, universe 16: input 0 is the MSB of the vector index. *)
  let universe = 16 in
  for bit = 0 to 3 do
    let w = Word.input_pattern ~universe ~batch:0 ~bit ~pi_count:4 in
    for v = 0 to 15 do
      let expected = (v lsr (3 - bit)) land 1 = 1 in
      Alcotest.(check bool)
        (Printf.sprintf "bit %d vec %d" bit v)
        expected (Word.get w v)
    done
  done

let test_word_input_pattern_batches () =
  (* 7 inputs: universe 128 spans 3 batches; lane j of batch b is vector
     b*62 + j. *)
  let universe = 128 and pi_count = 7 in
  for batch = 0 to 2 do
    let live = Word.batch_width ~universe ~batch in
    for bit = 0 to pi_count - 1 do
      let w = Word.input_pattern ~universe ~batch ~bit ~pi_count in
      for lane = 0 to live - 1 do
        let v = (batch * Word.width) + lane in
        let expected = (v lsr (pi_count - 1 - bit)) land 1 = 1 in
        Alcotest.(check bool)
          (Printf.sprintf "b%d bit%d lane%d" batch bit lane)
          expected (Word.get w lane)
      done
    done
  done

let () =
  Alcotest.run "logic"
    [
      ( "ternary",
        [
          Alcotest.test_case "truth tables" `Quick test_ternary_tables;
          Alcotest.test_case "boolean consistency" `Quick
            test_ternary_consistent_with_bool;
          Alcotest.test_case "monotone in refinement" `Quick
            test_ternary_monotone;
          Alcotest.test_case "de morgan" `Quick test_de_morgan;
          Alcotest.test_case "common (Definition 2)" `Quick test_common;
          Alcotest.test_case "char codec" `Quick test_chars;
        ] );
      ( "word",
        [
          Alcotest.test_case "masks" `Quick test_word_masks;
          Alcotest.test_case "batches" `Quick test_word_batches;
          Alcotest.test_case "input pattern" `Quick test_word_input_pattern;
          Alcotest.test_case "input pattern across batches" `Quick
            test_word_input_pattern_batches;
        ] );
    ]
