(* Tests for the extension features: pattern-set simulation, test-set
   evaluation, partitioning, defect-level estimation, wired bridges,
   checkpoint faults, BLIF and Verilog output. *)

module Netlist = Ndetect_circuit.Netlist
module Gate = Ndetect_circuit.Gate
module Stuck = Ndetect_faults.Stuck
module Bridge = Ndetect_faults.Bridge
module Wired = Ndetect_faults.Wired
module Eval = Ndetect_sim.Eval
module Good = Ndetect_sim.Good
module Fault_sim = Ndetect_sim.Fault_sim
module Naive = Ndetect_sim.Naive
module Bitvec = Ndetect_util.Bitvec
module Detection_table = Ndetect_core.Detection_table
module Worst_case = Ndetect_core.Worst_case
module Test_eval = Ndetect_core.Test_eval
module Partition = Ndetect_core.Partition
module Defect_level = Ndetect_core.Defect_level
module Average_case = Ndetect_core.Average_case
module Analysis = Ndetect_core.Analysis
module Blif = Ndetect_netparse.Blif
module Verilog = Ndetect_netparse.Verilog
module Bench_format = Ndetect_netparse.Bench_format
module Registry = Ndetect_suite.Registry
module Example = Ndetect_suite.Example

(* --- pattern-set simulation -------------------------------------- *)

let prop_pattern_sim_matches_universe =
  QCheck.Test.make
    ~name:"of_vectors detection sets = exhaustive sets restricted" ~count:20
    Helpers.circuit_arbitrary
    (Helpers.apply_circuit (fun net ->
         let universe = Netlist.universe_size net in
         (* A fixed, irregular pattern subset. *)
         let vectors =
           Array.of_list
             (List.filter (fun v -> v mod 3 <> 1) (List.init universe Fun.id))
         in
         if Array.length vectors = 0 then true
         else begin
           let exhaustive = Good.compute net in
           let patterns = Good.of_vectors net vectors in
           Array.for_all
             (fun fault ->
               let full = Fault_sim.stuck_detection_set exhaustive fault in
               let sub = Fault_sim.stuck_detection_set patterns fault in
               let expected =
                 Array.to_list vectors
                 |> List.mapi (fun pos v -> (pos, Bitvec.get full v))
                 |> List.filter_map (fun (pos, d) ->
                        if d then Some pos else None)
               in
               Bitvec.to_list sub = expected)
             (Stuck.collapse net)
         end))

let test_test_eval_example () =
  let net = Example.circuit () in
  let table = Detection_table.build net in
  (* Evaluate the full universe: Def1 counts must equal N(f). *)
  let ev =
    Test_eval.evaluate net ~vectors:(Array.init 16 Fun.id)
  in
  let counts = Test_eval.detections_def1 ev in
  for fi = 0 to Detection_table.target_count table - 1 do
    Alcotest.(check int) "count = N(f)"
      (Detection_table.target_n table fi)
      counts.(fi)
  done;
  Alcotest.(check (float 1e-9)) "100% stuck coverage" 100.0
    (Test_eval.stuck_coverage ev);
  Alcotest.(check (float 1e-9)) "bridge coverage = detectable fraction"
    (100.0 *. 10.0 /. 12.0)
    (Test_eval.bridge_coverage ev);
  Alcotest.(check bool) "duplicates dropped" true
    (Array.length
       (Test_eval.vectors
          (Test_eval.evaluate net ~vectors:[| 3; 3; 3; 5 |]))
    = 2)

let test_test_eval_def2_capped () =
  let net = Example.circuit () in
  (* Fault 1/1 has T = {4,5,6,7}, all pairwise similar: even the full
     universe only counts one Definition-2 detection. *)
  let ev = Test_eval.evaluate net ~vectors:(Array.init 16 Fun.id) in
  let def1 = Test_eval.detections_def1 ev in
  let def2 = Test_eval.detections_def2 ev in
  Alcotest.(check int) "1/1 def1 = 4" 4 def1.(0);
  Alcotest.(check int) "1/1 def2 = 1" 1 def2.(0);
  Array.iteri
    (fun fi d2 ->
      Alcotest.(check bool) "def2 <= def1" true (d2 <= def1.(fi)))
    def2

let test_test_eval_is_n_detection () =
  let net = Example.circuit () in
  let ev = Test_eval.evaluate net ~vectors:(Array.init 16 Fun.id) in
  Alcotest.(check bool) "full universe is 4-detection" true
    (Test_eval.is_n_detection ev ~n:4 ~def2:false);
  Alcotest.(check bool) "but not 5-detection (a fault has N = 4)" false
    (Test_eval.is_n_detection ev ~n:5 ~def2:false)

(* --- partitioning -------------------------------------------------- *)

let test_partition_extract_semantics () =
  let net = Registry.circuit (Option.get (Registry.find "mc")) in
  let blocks = Partition.blocks net ~max_inputs:3 in
  Alcotest.(check bool) "at least two blocks" true (List.length blocks >= 2);
  (* Every original output appears in exactly one block. *)
  let all_outputs =
    List.concat_map (fun b -> Array.to_list b.Partition.outputs) blocks
  in
  Alcotest.(check int) "outputs partitioned"
    (Array.length (Netlist.outputs net))
    (List.length (List.sort_uniq Int.compare all_outputs));
  (* Block subcircuits compute the original functions. *)
  List.iter
    (fun block ->
      let sub = block.Partition.subcircuit in
      Alcotest.(check bool) "support bounded (or singleton)" true
        (Netlist.input_count sub <= 3
        || Array.length block.Partition.outputs = 1);
      for v = 0 to Netlist.universe_size sub - 1 do
        let sub_assignment = Eval.assignment_of_vector sub v in
        (* Build a full assignment with the support bits set. *)
        let full = Array.make (Netlist.input_count net) false in
        Array.iteri
          (fun i pi -> full.(pi) <- sub_assignment.(i))
          block.Partition.support;
        let full_values = Eval.eval_assignment net full in
        let sub_values = Eval.eval_assignment sub sub_assignment in
        Array.iteri
          (fun k o ->
            let sub_out = (Netlist.outputs sub).(k) in
            Alcotest.(check bool) "same function" full_values.(o)
              sub_values.(sub_out))
          block.Partition.outputs
      done)
    blocks

let test_partition_analysis_aggregates () =
  let net = Registry.circuit (Option.get (Registry.find "mc")) in
  let results = Partition.analyze ~max_inputs:4 ~name:"mc" net in
  Alcotest.(check bool) "analyzed some blocks" true (results <> []);
  let combined = Partition.combined_summary ~name:"mc-partitioned" results in
  Alcotest.(check bool) "has faults" true (combined.Analysis.untargeted_faults > 0);
  (* Percentages are monotone in n. *)
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "monotone" true
    (monotone combined.Analysis.percent_below)

(* --- defect level --------------------------------------------------- *)

let test_defect_level_monotone_in_tests () =
  let net = Example.circuit () in
  let small = Defect_level.compute net ~vectors:[| 6 |] in
  let large = Defect_level.compute net ~vectors:(Array.init 16 Fun.id) in
  Alcotest.(check bool) "more tests, lower escape" true
    (Defect_level.escape_probability large
    < Defect_level.escape_probability small);
  Alcotest.(check bool) "defect level scales" true
    (Defect_level.defect_level ~defect_density:0.02 large
    < Defect_level.defect_level ~defect_density:0.02 small)

let test_defect_level_extremes () =
  let net = Example.circuit () in
  let dl = Defect_level.compute net ~vectors:(Array.init 16 Fun.id) in
  (* q = 0: no observation ever detects, escape probability 1. *)
  Alcotest.(check (float 1e-9)) "q=0" 1.0
    (Defect_level.escape_probability ~q:0.0 dl);
  (* q = 1: only never-observed sites escape. *)
  let counts = Defect_level.observation_counts dl in
  let unobserved =
    Array.fold_left (fun acc k -> if k = 0 then acc + 1 else acc) 0 counts
  in
  Alcotest.(check (float 1e-9)) "q=1"
    (float_of_int unobserved /. float_of_int (Array.length counts))
    (Defect_level.escape_probability ~q:1.0 dl);
  Alcotest.(check bool) "all sites observed by exhaustive set" true
    (Defect_level.min_observations dl >= 0)

let test_expected_escapes () =
  Alcotest.(check (float 1e-9)) "sum of 1-p" 0.6
    (Average_case.expected_escapes [| 1.0; 0.9; 0.5 |])

(* --- wired bridges --------------------------------------------------- *)

let prop_wired_sim_matches_naive =
  QCheck.Test.make ~name:"wired detection sets: cone == naive" ~count:20
    Helpers.circuit_arbitrary
    (Helpers.apply_circuit (fun net ->
         let good = Good.compute net in
         List.for_all
           (fun semantics ->
             Array.for_all
               (fun fault ->
                 Bitvec.equal
                   (Fault_sim.wired_detection_set good fault)
                   (Naive.wired_detection_set net fault))
               (Wired.enumerate net semantics))
           [ Wired.Wired_and; Wired.Wired_or ]))

let test_wired_example () =
  let net = Example.circuit () in
  let wired_and = Wired.enumerate net Wired.Wired_and in
  (* Same three non-feedback pairs as the four-way model, one fault each. *)
  Alcotest.(check int) "three wired-AND faults" 3 (Array.length wired_and);
  let good = Good.compute net in
  (* Wired-AND between 9 and 10 differs from fault-free exactly when the
     two lines disagree and the affected one is observed: for POs 9 and
     10 that is whenever 9 <> 10. *)
  let t =
    Fault_sim.wired_detection_set good
      { Wired.a = 4; b = 5; semantics = Wired.Wired_and }
  in
  let expected =
    List.filter
      (fun v ->
        let x1 = v land 8 <> 0 and x2 = v land 4 <> 0 and x3 = v land 2 <> 0 in
        (x1 && x2) <> (x2 && x3))
      (List.init 16 Fun.id)
  in
  Alcotest.(check (list int)) "wired-AND(9,10)" expected (Bitvec.to_list t)

let test_wired_analysis_model () =
  let net = Example.circuit () in
  let table = Detection_table.build ~model:(Detection_table.Wired Wired.Wired_or) net in
  Alcotest.(check bool) "has wired untargeted faults" true
    (Detection_table.untargeted_count table > 0);
  let worst = Worst_case.compute table in
  for gj = 0 to Detection_table.untargeted_count table - 1 do
    Alcotest.(check bool) "nmin computed" true (Worst_case.nmin worst gj >= 1)
  done;
  match Detection_table.untargeted_fault table 0 with
  | Detection_table.Wired_fault _ -> ()
  | Detection_table.Bridge_fault _ -> Alcotest.fail "expected wired fault"

(* --- checkpoints ------------------------------------------------------ *)

let test_checkpoints_example () =
  let net = Example.circuit () in
  let cps = Stuck.checkpoints net in
  (* 4 PI stems + 4 branches = 8 lines, 16 faults. *)
  Alcotest.(check int) "16 checkpoint faults" 16 (Array.length cps);
  (* Checkpoint theorem on this irredundant circuit: every detectable
     fault dominates some checkpoint fault. *)
  let good = Good.compute net in
  let cp_sets =
    Array.map (Fault_sim.stuck_detection_set good) cps
    |> Array.to_list
    |> List.filter (fun s -> not (Bitvec.is_empty s))
  in
  Array.iter
    (fun fault ->
      let tf = Fault_sim.stuck_detection_set good fault in
      if not (Bitvec.is_empty tf) then
        Alcotest.(check bool)
          (Stuck.to_string net fault ^ " dominated by a checkpoint")
          true
          (List.exists (fun cp -> Bitvec.subset cp tf) cp_sets))
    (Stuck.all net)

(* --- BLIF / Verilog --------------------------------------------------- *)

let blif_text =
  {|# example
.model demo
.inputs a b c
.outputs y z
.names a b w
11 1
.names w c y
1- 1
-1 1
.names a z
0 1
.end
|}

let test_blif_parse_semantics () =
  let net = Blif.parse blif_text in
  Alcotest.(check int) "3 inputs" 3 (Netlist.input_count net);
  (* y = (a & b) | c, z = !a. *)
  for v = 0 to 7 do
    let a = v land 4 <> 0 and b = v land 2 <> 0 and c = v land 1 <> 0 in
    let out = Eval.outputs_of_vector net v in
    Alcotest.(check bool) "y" ((a && b) || c) out.(0);
    Alcotest.(check bool) "z" (not a) out.(1)
  done

let test_blif_latches_become_scan_io () =
  let src =
    ".model m\n.inputs a\n.outputs y\n.latch ns s re ck 0\n.names a s ns\n11 1\n.names s y\n1 1\n.end\n"
  in
  let net = Blif.parse src in
  (* Inputs a and s; outputs y and ns. *)
  Alcotest.(check int) "2 inputs" 2 (Netlist.input_count net);
  Alcotest.(check int) "2 outputs" 2 (Array.length (Netlist.outputs net))

let test_blif_offset_cover () =
  let src = ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n" in
  let net = Blif.parse src in
  (* y = NOT(a & b). *)
  for v = 0 to 3 do
    let a = v land 2 <> 0 and b = v land 1 <> 0 in
    Alcotest.(check bool) "nand" (not (a && b)) (Eval.outputs_of_vector net v).(0)
  done

let test_blif_roundtrip () =
  let net = Example.circuit () in
  let net2 = Blif.parse (Blif.print net ()) in
  for v = 0 to 15 do
    Alcotest.(check (array bool)) "same outputs"
      (Eval.outputs_of_vector net v)
      (Eval.outputs_of_vector net2 v)
  done

let prop_blif_roundtrip_random =
  QCheck.Test.make ~name:"BLIF print/parse preserves semantics" ~count:25
    Helpers.circuit_arbitrary
    (Helpers.apply_circuit (fun net ->
         let net2 = Blif.parse (Blif.print net ()) in
         let ok = ref true in
         for v = 0 to Netlist.universe_size net - 1 do
           if Eval.outputs_of_vector net v <> Eval.outputs_of_vector net2 v
           then ok := false
         done;
         !ok))

let test_blif_errors () =
  let check src =
    Alcotest.(check bool) "raises" true
      (try
         ignore (Blif.parse src);
         false
       with Blif.Parse_error _ -> true)
  in
  check ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n11 1\n.end\n";
  check ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n1 0\n.end\n";
  check ".model m\n.inputs a\n.outputs y\n1 1\n.end\n";
  check ".model m\n.inputs a\n.names a a2\n1 1\n.end\n"

let test_verilog_output () =
  let net = Example.circuit () in
  let text = Verilog.print net in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (Helpers.contains_substring text needle))
    [ "module ndetect"; "endmodule"; "and g"; "or g"; "assign po0" ]

let test_verilog_sanitizes_names () =
  (* The example circuit's numeric names must be legalized. *)
  let net = Example.circuit () in
  let text = Verilog.print net in
  Alcotest.(check bool) "no bare numeric identifiers" true
    (Helpers.contains_substring text "input n1;"
    || Helpers.contains_substring text "input n1,")

(* --- bench roundtrip through files ------------------------------------ *)

let test_bench_file_roundtrip () =
  let net = Registry.circuit (Option.get (Registry.find "lion")) in
  let path = Filename.temp_file "ndetect" ".bench" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Bench_format.print net);
      close_out oc;
      let net2 = Bench_format.parse_file path in
      for v = 0 to Netlist.universe_size net - 1 do
        Alcotest.(check (array bool)) "same"
          (Eval.outputs_of_vector net v)
          (Eval.outputs_of_vector net2 v)
      done)

let () =
  Alcotest.run "extensions"
    [
      ( "pattern-sim",
        [
          Helpers.qcheck prop_pattern_sim_matches_universe;
          Alcotest.test_case "test_eval example" `Quick test_test_eval_example;
          Alcotest.test_case "test_eval def2" `Quick test_test_eval_def2_capped;
          Alcotest.test_case "is_n_detection" `Quick
            test_test_eval_is_n_detection;
        ] );
      ( "partition",
        [
          Alcotest.test_case "extract semantics" `Quick
            test_partition_extract_semantics;
          Alcotest.test_case "aggregate analysis" `Quick
            test_partition_analysis_aggregates;
        ] );
      ( "defect-level",
        [
          Alcotest.test_case "monotone in tests" `Quick
            test_defect_level_monotone_in_tests;
          Alcotest.test_case "extremes" `Quick test_defect_level_extremes;
          Alcotest.test_case "expected escapes" `Quick test_expected_escapes;
        ] );
      ( "wired",
        [
          Alcotest.test_case "example" `Quick test_wired_example;
          Alcotest.test_case "analysis with wired model" `Quick
            test_wired_analysis_model;
          Helpers.qcheck prop_wired_sim_matches_naive;
        ] );
      ( "checkpoints",
        [ Alcotest.test_case "example" `Quick test_checkpoints_example ] );
      ( "blif",
        [
          Alcotest.test_case "parse semantics" `Quick
            test_blif_parse_semantics;
          Alcotest.test_case "latches" `Quick test_blif_latches_become_scan_io;
          Alcotest.test_case "off-set cover" `Quick test_blif_offset_cover;
          Alcotest.test_case "roundtrip example" `Quick test_blif_roundtrip;
          Alcotest.test_case "errors" `Quick test_blif_errors;
          Helpers.qcheck prop_blif_roundtrip_random;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "output" `Quick test_verilog_output;
          Alcotest.test_case "sanitized names" `Quick
            test_verilog_sanitizes_names;
        ] );
      ( "bench-files",
        [ Alcotest.test_case "file roundtrip" `Quick test_bench_file_roundtrip ]
      );
    ]
