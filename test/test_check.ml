(* Differential oracle subsystem: the reference implementations agree
   with the optimized stack on fixed and random circuits, and the
   --mutate self-test proves a seeded wrong answer is reported. *)

module Bitvec = Ndetect_util.Bitvec
module Netlist = Ndetect_circuit.Netlist
module Detection_table = Ndetect_core.Detection_table
module Worst_case = Ndetect_core.Worst_case
module Definition2 = Ndetect_core.Definition2
module Procedure1 = Ndetect_core.Procedure1
module Example = Ndetect_suite.Example
module Random_circuit = Ndetect_suite.Random_circuit
module Ref_eval = Ndetect_check.Ref_eval
module Ref_table = Ndetect_check.Ref_table
module Ref_worst = Ndetect_check.Ref_worst
module Ref_def2 = Ndetect_check.Ref_def2
module Ref_procedure1 = Ndetect_check.Ref_procedure1
module Campaign = Ndetect_check.Campaign

let no_divergences label divs =
  Alcotest.(check int)
    (label ^ ": no divergences"
    ^
    match divs with
    | [] -> ""
    | d :: _ ->
      Printf.sprintf " (first: %s ref=%s opt=%s)" d.Campaign.cell
        d.Campaign.expected d.Campaign.actual)
    0 (List.length divs)

(* The paper's worked example (Figure 1) must agree cell for cell in
   every Procedure 1 mode. *)
let test_example_circuit_agrees () =
  List.iter
    (fun mode ->
      no_divergences "example"
        (Campaign.check_net ~proc_mode:mode ~seed:3 (Example.circuit ())))
    [ Procedure1.Definition1; Procedure1.Definition2; Procedure1.Multi_output ]

(* The reference tables reproduce the example's published numbers
   independently of the optimized stack. *)
let test_ref_table_example_numbers () =
  let net = Example.circuit () in
  let rt = Ref_table.build net in
  let table = Detection_table.build net in
  Alcotest.(check int)
    "target count" (Detection_table.target_count table)
    (Ref_table.target_count rt);
  Alcotest.(check int)
    "untargeted count"
    (Detection_table.untargeted_count table)
    (Ref_table.untargeted_count rt)

let test_ref_worst_unbounded () =
  (* A fault with no intersecting target set gets the sentinel. *)
  Alcotest.(check int) "sentinel" max_int Ref_worst.unbounded

(* Definition 2 verdicts: memoized cone oracle vs whole-circuit ternary
   re-evaluation, all pairs over the example circuit's universe. *)
let test_def2_all_pairs_example () =
  let net = Example.circuit () in
  let rt = Ref_table.build net in
  let table = Detection_table.build net in
  let universe = Ref_table.universe rt in
  let opt = Definition2.create table in
  let refo =
    Ref_def2.create net
      (Array.init (Ref_table.target_count rt) (Ref_table.target_fault rt))
  in
  for fi = 0 to Ref_table.target_count rt - 1 do
    for v1 = 0 to universe - 1 do
      for v2 = 0 to universe - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "different(f%d,%d,%d)" fi v1 v2)
          (Ref_def2.different refo ~fi v1 v2)
          (Definition2.different opt ~fi v1 v2)
      done
    done
  done

(* Random-circuit property: a clean campaign finds no divergences. Kept
   small; the runtest rule on the CLI runs a larger one and the full
   campaign is `ndetect check --circuits 200 --seed 42`. *)
let test_clean_campaign () =
  let report = Campaign.run ~circuits:8 ~seed:42 ~max_pi:5 () in
  Alcotest.(check int) "circuits" 8 report.Campaign.circuits_run;
  Alcotest.(check int)
    ("no failures: " ^ Campaign.render report)
    0
    (List.length report.Campaign.failures);
  Alcotest.(check bool)
    "no reproducer" true
    (report.Campaign.reproducer = None)

let prop_random_circuit_agrees =
  QCheck.Test.make ~count:15 ~name:"optimized stack agrees with reference"
    Helpers.circuit_arbitrary (fun (seed, inputs, gates) ->
      (* Bound the universe: the oracle is exhaustive. *)
      let inputs = min inputs 5 in
      let spec = { Random_circuit.seed; inputs; gates = min gates 12 } in
      Campaign.check_spec spec = [])

(* The self-test: a seeded single-bit corruption of one optimized
   detection set must be reported and shrink to a smaller spec. *)
let test_mutate_campaign_catches_bug () =
  let report = Campaign.run ~mutate:true ~circuits:3 ~seed:7 ~max_pi:4 () in
  Alcotest.(check bool)
    "at least one failure" true
    (report.Campaign.failures <> []);
  match report.Campaign.reproducer with
  | None -> Alcotest.fail "mutate campaign produced no reproducer"
  | Some (spec, d) ->
    let orig = (List.hd report.Campaign.failures).Campaign.spec in
    Alcotest.(check bool)
      "shrunk spec is no larger" true
      (spec.Random_circuit.gates <= orig.Random_circuit.gates
      && spec.Random_circuit.inputs <= orig.Random_circuit.inputs);
    (* The shrunk spec still reproduces. *)
    Alcotest.(check bool)
      "reproducer diverges" true
      (Campaign.check_spec ~mutate:true spec <> []);
    Alcotest.(check bool) "divergence has a cell" true (d.Campaign.cell <> "")

(* Stem-engine self-test, same philosophy as --mutate: corrupt the
   critical-path sensitization words (complement every in-region rung)
   and the differential campaign must notice. Proves the campaign
   actually exercises the traced path, not just the dispatcher. *)
let test_corrupt_sensitization_caught () =
  let saved = Ndetect_sim.Strategy.current_name () in
  (match Ndetect_sim.Strategy.select "stem" with
  | Ok () -> ()
  | Error message -> Alcotest.fail message);
  Ndetect_sim.Fault_sim.debug_corrupt_sensitization := true;
  Fun.protect
    ~finally:(fun () ->
      Ndetect_sim.Fault_sim.debug_corrupt_sensitization := false;
      ignore (Ndetect_sim.Strategy.select saved))
    (fun () ->
      Alcotest.(check bool)
        "campaign catches corrupted sensitization" true
        (Campaign.check_net ~seed:3 (Example.circuit ()) <> []))

let test_corrupt_target_set_is_local () =
  let net = Example.circuit () in
  let table = Detection_table.build net in
  let before =
    Array.init (Detection_table.target_count table) (fun fi ->
        Bitvec.to_list (Detection_table.target_set table fi))
  in
  Detection_table.corrupt_target_set table ~fi:0 ~vector:0;
  let changed = ref 0 in
  Array.iteri
    (fun fi old ->
      if Bitvec.to_list (Detection_table.target_set table fi) <> old then
        incr changed)
    before;
  Alcotest.(check int) "exactly one set changed" 1 !changed

let test_shrink_requires_divergence () =
  Alcotest.check_raises "non-diverging spec"
    (Invalid_argument "Campaign.shrink: spec does not diverge")
    (fun () ->
      ignore
        (Campaign.shrink { Random_circuit.seed = 1; inputs = 2; gates = 2 }))

(* Ref_eval's from-scratch semantics pin down the basics on a circuit
   small enough to check by hand: g = AND(i0, i1), observed. *)
let test_ref_eval_hand_checked () =
  let b = Netlist.Builder.create () in
  let i0 = Netlist.Builder.add_input b ~name:"i0" in
  let i1 = Netlist.Builder.add_input b ~name:"i1" in
  let g =
    Netlist.Builder.add_gate b ~kind:Ndetect_circuit.Gate.And
      ~fanins:[| i0; i1 |] ~name:"g"
  in
  Netlist.Builder.set_outputs b [| g |];
  let net = Netlist.Builder.finalize b in
  (* Vector 3 = i0:1 i1:1 (first input is the MSB). *)
  Alcotest.(check bool) "AND(1,1)" true (Ref_eval.good_outputs net 3).(0);
  Alcotest.(check bool) "AND(1,0)" false (Ref_eval.good_outputs net 2).(0);
  (* Output stuck-at-0 is detected exactly by vector 3. *)
  let fault =
    { Ndetect_faults.Stuck.line = Ndetect_circuit.Line.Stem g; value = false }
  in
  Alcotest.(check bool) "sa0 at 3" true (Ref_eval.detects_stuck net fault 3);
  Alcotest.(check bool) "sa0 at 2" false (Ref_eval.detects_stuck net fault 2)

let () =
  Alcotest.run "check"
    [
      ( "differential",
        [
          Alcotest.test_case "example circuit agrees (all modes)" `Quick
            test_example_circuit_agrees;
          Alcotest.test_case "ref table shapes match" `Quick
            test_ref_table_example_numbers;
          Alcotest.test_case "ref worst sentinel" `Quick
            test_ref_worst_unbounded;
          Alcotest.test_case "def2 all pairs (example)" `Quick
            test_def2_all_pairs_example;
          Alcotest.test_case "clean campaign" `Quick test_clean_campaign;
          Helpers.qcheck prop_random_circuit_agrees;
        ] );
      ( "self-test",
        [
          Alcotest.test_case "mutate campaign catches the bug" `Quick
            test_mutate_campaign_catches_bug;
          Alcotest.test_case "corruption is confined to one set" `Quick
            test_corrupt_target_set_is_local;
          Alcotest.test_case "corrupted sensitization is caught" `Quick
            test_corrupt_sensitization_caught;
          Alcotest.test_case "shrink rejects clean specs" `Quick
            test_shrink_requires_divergence;
        ] );
      ( "ref-eval",
        [
          Alcotest.test_case "hand-checked AND circuit" `Quick
            test_ref_eval_hand_checked;
        ] );
    ]
