(* Tests for the SCOAP testability measures and the LFSR baseline. *)

module Netlist = Ndetect_circuit.Netlist
module Gate = Ndetect_circuit.Gate
module Line = Ndetect_circuit.Line
module Scoap = Ndetect_circuit.Scoap
module Stuck = Ndetect_faults.Stuck
module Good = Ndetect_sim.Good
module Fault_sim = Ndetect_sim.Fault_sim
module Lfsr = Ndetect_tgen.Lfsr
module Bitvec = Ndetect_util.Bitvec
module Example = Ndetect_suite.Example

let node net name = Option.get (Netlist.find_by_name net name)

let test_scoap_example_controllability () =
  let net = Example.circuit () in
  let s = Scoap.compute net in
  Array.iter
    (fun pi ->
      Alcotest.(check int) "PI cc0" 1 (Scoap.cc0 s pi);
      Alcotest.(check int) "PI cc1" 1 (Scoap.cc1 s pi))
    (Netlist.inputs net);
  let g9 = node net "9" and g11 = node net "11" in
  Alcotest.(check int) "AND cc1" 3 (Scoap.cc1 s g9);
  Alcotest.(check int) "AND cc0" 2 (Scoap.cc0 s g9);
  Alcotest.(check int) "OR cc0" 3 (Scoap.cc0 s g11);
  Alcotest.(check int) "OR cc1" 2 (Scoap.cc1 s g11)

let test_scoap_example_observability () =
  let net = Example.circuit () in
  let s = Scoap.compute net in
  let g9 = node net "9" in
  Alcotest.(check int) "PO co" 0 (Scoap.co s g9);
  let in1 = node net "1" and in2 = node net "2" in
  (* Input 1 observes through gate 9 with side input 2 at 1: 0 + 1 + 1. *)
  Alcotest.(check int) "input 1 co" 2 (Scoap.co s in1);
  Alcotest.(check int) "input 2 co (two equal paths)" 2 (Scoap.co s in2);
  (* Branch observability equals the pin cost. *)
  let lines = Line.enumerate net in
  Alcotest.(check int) "branch 2>9 co" 2 (Scoap.line_co s lines.(4))

let test_scoap_fault_effort () =
  let net = Example.circuit () in
  let s = Scoap.compute net in
  let g9 = node net "9" in
  (* 9 stuck-at-0: control to 1 (cc1 = 3) + observe (0). *)
  Alcotest.(check int) "9/0 effort" 3
    (Scoap.fault_effort s (Line.Stem g9) ~value:false);
  Alcotest.(check int) "9/1 effort" 2
    (Scoap.fault_effort s (Line.Stem g9) ~value:true)

let test_scoap_constants_and_not () =
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_input b ~name:"a" in
  let na = Netlist.Builder.add_gate b ~kind:Gate.Not ~fanins:[| a |] ~name:"na" in
  let c0 = Netlist.Builder.add_gate b ~kind:Gate.Const0 ~fanins:[||] ~name:"c0" in
  let y = Netlist.Builder.add_gate b ~kind:Gate.Or ~fanins:[| na; c0 |] ~name:"y" in
  Netlist.Builder.set_outputs b [| y |];
  let net = Netlist.Builder.finalize b in
  let s = Scoap.compute net in
  Alcotest.(check int) "NOT cc0 = cc1(in)+1" 2 (Scoap.cc0 s na);
  Alcotest.(check int) "const0 cc0" 1 (Scoap.cc0 s c0);
  Alcotest.(check int) "const0 cc1 infinite" Scoap.infinite (Scoap.cc1 s c0)

let test_scoap_xor () =
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_input b ~name:"a" in
  let c = Netlist.Builder.add_input b ~name:"c" in
  let y = Netlist.Builder.add_gate b ~kind:Gate.Xor ~fanins:[| a; c |] ~name:"y" in
  Netlist.Builder.set_outputs b [| y |];
  let net = Netlist.Builder.finalize b in
  let s = Scoap.compute net in
  Alcotest.(check int) "XOR cc0" 3 (Scoap.cc0 s y);
  Alcotest.(check int) "XOR cc1" 3 (Scoap.cc1 s y);
  Alcotest.(check int) "XOR pin co" 2 (Scoap.co_pin s ~gate:y ~pin:0)

(* Structural soundness: a detectable fault always has finite SCOAP
   effort (the converse need not hold). *)
let prop_scoap_finite_for_detectable =
  QCheck.Test.make ~name:"detectable faults have finite SCOAP effort"
    ~count:40 Helpers.circuit_arbitrary
    (Helpers.apply_circuit (fun net ->
         let s = Scoap.compute net in
         let good = Good.compute net in
         Array.for_all
           (fun fault ->
             let detectable =
               not
                 (Bitvec.is_empty (Fault_sim.stuck_detection_set good fault))
             in
             (not detectable)
             || Scoap.fault_effort s fault.Stuck.line
                  ~value:fault.Stuck.value
                < Scoap.infinite)
           (Stuck.all net)))

let prop_scoap_positive =
  QCheck.Test.make ~name:"controllabilities are at least 1" ~count:60
    Helpers.circuit_arbitrary
    (Helpers.apply_circuit (fun net ->
         let s = Scoap.compute net in
         let ok = ref true in
         for id = 0 to Netlist.node_count net - 1 do
           if Scoap.cc0 s id < 1 || Scoap.cc1 s id < 1 then ok := false;
           if Netlist.is_output net id && Scoap.co s id <> 0 then ok := false
         done;
         !ok))

(* --- LFSR ------------------------------------------------------------- *)

let test_lfsr_maximal_period () =
  List.iter
    (fun w ->
      let lfsr = Lfsr.create ~width:w () in
      let period = (1 lsl w) - 1 in
      let seen = Hashtbl.create period in
      for _ = 1 to period do
        let v = Lfsr.next lfsr in
        Alcotest.(check bool) "nonzero" true (v <> 0);
        Alcotest.(check bool) "in range" true (v < 1 lsl w);
        Alcotest.(check bool) "fresh" true (not (Hashtbl.mem seen v));
        Hashtbl.replace seen v ()
      done;
      Alcotest.(check int)
        (Printf.sprintf "width %d full period" w)
        period (Hashtbl.length seen))
    [ 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15; 16 ]

let test_lfsr_errors () =
  Alcotest.(check bool) "width 1" true
    (try
       ignore (Lfsr.create ~width:1 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "width 25" true
    (try
       ignore (Lfsr.create ~width:25 ());
       false
     with Invalid_argument _ -> true)

let test_lfsr_patterns () =
  let ps = Lfsr.patterns ~width:6 ~count:20 () in
  Alcotest.(check int) "count" 20 (Array.length ps);
  Alcotest.(check int) "distinct below period" 20
    (List.length (List.sort_uniq Int.compare (Array.to_list ps)))

let test_lfsr_zero_seed_fixed () =
  let lfsr = Lfsr.create ~width:5 ~seed:0 () in
  Alcotest.(check bool) "escapes zero" true (Lfsr.next lfsr <> 0)

let test_lfsr_coverage_grows () =
  (* Pseudorandom patterns cover most stuck-at faults of a small circuit
     quickly (the standard random-pattern-testable observation). *)
  let net = Example.circuit () in
  let faults = Stuck.collapse net in
  let coverage count =
    let vectors = Lfsr.patterns ~width:4 ~count () in
    let good = Good.of_vectors net vectors in
    Array.fold_left
      (fun acc f ->
        if Bitvec.is_empty (Fault_sim.stuck_detection_set good f) then acc
        else acc + 1)
      0 faults
  in
  Alcotest.(check bool) "monotone" true (coverage 4 <= coverage 12);
  Alcotest.(check int) "full coverage at period (15 of 16 vectors)"
    (Array.length faults) (coverage 15)

let () =
  Alcotest.run "testability"
    [
      ( "scoap",
        [
          Alcotest.test_case "example controllability" `Quick
            test_scoap_example_controllability;
          Alcotest.test_case "example observability" `Quick
            test_scoap_example_observability;
          Alcotest.test_case "fault effort" `Quick test_scoap_fault_effort;
          Alcotest.test_case "constants and NOT" `Quick
            test_scoap_constants_and_not;
          Alcotest.test_case "xor" `Quick test_scoap_xor;
          Helpers.qcheck prop_scoap_finite_for_detectable;
          Helpers.qcheck prop_scoap_positive;
        ] );
      ( "lfsr",
        [
          Alcotest.test_case "maximal period" `Quick test_lfsr_maximal_period;
          Alcotest.test_case "errors" `Quick test_lfsr_errors;
          Alcotest.test_case "patterns" `Quick test_lfsr_patterns;
          Alcotest.test_case "zero seed" `Quick test_lfsr_zero_seed_fixed;
          Alcotest.test_case "coverage grows" `Quick test_lfsr_coverage_grows;
        ] );
    ]
