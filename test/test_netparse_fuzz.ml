(* Fuzz tests for the four netlist/machine parsers: on arbitrary input
   they must either succeed or fail with a structured diagnostic —
   [parse] raises only [Parse_error], and [parse_result] never raises
   at all. *)

module Bench_format = Ndetect_netparse.Bench_format
module Blif = Ndetect_netparse.Blif
module Kiss2 = Ndetect_netparse.Kiss2
module Pla = Ndetect_netparse.Pla
module Diagnostic = Ndetect_netparse.Diagnostic

(* Random text biased toward the tokens the parsers care about, so the
   fuzzer reaches past the first line instead of bailing immediately. *)
let fragment_gen =
  QCheck.Gen.(
    frequency
      [
        (3, oneofl
           [
             "INPUT("; "OUTPUT("; ")"; "= AND("; "= NAND("; "= NOT(";
             ".model m"; ".inputs a b"; ".outputs y"; ".names a y";
             ".latch a b"; ".end"; ".i 2"; ".o 1"; ".s 3"; ".p 4"; ".r s0";
             ".ilb a b"; ".ob y"; "01"; "10"; "--"; "0-"; "s0"; "s1";
             "a"; "b"; "y"; ","; "#comment"; "1 1";
           ]);
        (2, map (String.make 1) (char_range 'a' 'z'));
        (1, map (String.make 1) (char_range '\x00' '\x7f'));
        (2, return " ");
        (2, return "\n");
      ])

let text_gen =
  QCheck.Gen.(map (String.concat "") (list_size (int_range 0 60) fragment_gen))

let fuzz_input = QCheck.make ~print:String.escaped text_gen

(* Each parser owns its [Parse_error] exception, so the "only structured
   failures" property takes a per-parser recognizer. *)
let only_structured_failures name ~parse ~parse_result ~is_parse_error =
  QCheck.Test.make ~name ~count:500 fuzz_input (fun text ->
      let via_result =
        match parse_result text with
        | Ok _ -> `Ok
        | Error (`Parse (d : Diagnostic.t)) ->
          (* Diagnostics must be renderable and carry a sane line. *)
          if d.Diagnostic.line < 0 then
            QCheck.Test.fail_report "negative diagnostic line";
          ignore (Diagnostic.to_string ~file:"fuzz" d);
          `Error
      in
      let via_exn =
        match parse text with
        | _ -> `Ok
        | exception e ->
          if is_parse_error e then `Error
          else
            QCheck.Test.fail_reportf "unexpected exception %s"
              (Printexc.to_string e)
      in
      via_result = via_exn)

let props =
  [
    only_structured_failures "bench fuzz" ~parse:Bench_format.parse
      ~parse_result:Bench_format.parse_result
      ~is_parse_error:(function
        | Bench_format.Parse_error _ -> true
        | _ -> false);
    only_structured_failures "blif fuzz" ~parse:Blif.parse
      ~parse_result:Blif.parse_result
      ~is_parse_error:(function Blif.Parse_error _ -> true | _ -> false);
    only_structured_failures "kiss2 fuzz" ~parse:Kiss2.parse
      ~parse_result:Kiss2.parse_result
      ~is_parse_error:(function Kiss2.Parse_error _ -> true | _ -> false);
    only_structured_failures "pla fuzz" ~parse:Pla.parse
      ~parse_result:Pla.parse_result
      ~is_parse_error:(function Pla.Parse_error _ -> true | _ -> false);
  ]

let test_file_result_io () =
  match Bench_format.parse_file_result "/nonexistent/fuzz.bench" with
  | Error (`Io _) -> ()
  | Ok _ -> Alcotest.fail "expected io error"
  | Error (`Parse _) -> Alcotest.fail "expected io, got parse"

let () =
  Alcotest.run "netparse-fuzz"
    [
      ("fuzz", List.map Helpers.qcheck props);
      ( "files",
        [ Alcotest.test_case "missing file is `Io" `Quick test_file_result_io ]
      );
    ]
