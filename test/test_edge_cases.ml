(* Edge cases and error paths across the libraries. *)

module Rng = Ndetect_util.Rng
module Bitvec = Ndetect_util.Bitvec
module Word = Ndetect_logic.Word
module Gate = Ndetect_circuit.Gate
module Netlist = Ndetect_circuit.Netlist
module Line = Ndetect_circuit.Line
module Cube = Ndetect_synth.Cube
module Encode = Ndetect_synth.Encode
module Multilevel = Ndetect_synth.Multilevel
module Stuck = Ndetect_faults.Stuck
module Eval = Ndetect_sim.Eval
module Good = Ndetect_sim.Good
module Detection_table = Ndetect_core.Detection_table
module Worst_case = Ndetect_core.Worst_case
module Procedure1 = Ndetect_core.Procedure1
module Partition = Ndetect_core.Partition
module Defect_level = Ndetect_core.Defect_level
module Example = Ndetect_suite.Example

let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

(* A circuit with no multi-input gates: inverter chain. *)
let inverter_chain () =
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_input b ~name:"a" in
  let n1 = Netlist.Builder.add_gate b ~kind:Gate.Not ~fanins:[| a |] ~name:"n1" in
  let n2 = Netlist.Builder.add_gate b ~kind:Gate.Not ~fanins:[| n1 |] ~name:"n2" in
  Netlist.Builder.set_outputs b [| n2 |];
  Netlist.Builder.finalize b

let test_empty_untargeted_analysis () =
  let net = inverter_chain () in
  let table = Detection_table.build net in
  Alcotest.(check int) "no bridges" 0 (Detection_table.untargeted_count table);
  let worst = Worst_case.compute table in
  Alcotest.(check int) "count below" 0 (Worst_case.count_below worst 10);
  Alcotest.(check (float 1e-9)) "vacuous coverage" 1.0
    (Worst_case.coverage_guaranteed worst ~n:1);
  Alcotest.(check bool) "no max" true
    (Worst_case.max_finite_nmin worst = None);
  (* Procedure 1 still runs (it only needs targets). *)
  let outcome =
    Procedure1.run table
      { Procedure1.seed = 1; set_count = 3; nmax = 2;
        mode = Procedure1.Definition1 }
  in
  Alcotest.(check bool) "sets nonempty" true
    (Procedure1.test_set outcome ~k:0 <> [])

let test_collapse_inverter_chain () =
  let net = inverter_chain () in
  (* a/0 = n1/1 = n2/0 and a/1 = n1/0 = n2/1: two classes. *)
  Alcotest.(check int) "two classes" 2 (Array.length (Stuck.collapse net))

let test_procedure1_bad_config () =
  let table = Detection_table.build (Example.circuit ()) in
  Alcotest.(check bool) "bad k" true
    (raises_invalid (fun () ->
         Procedure1.run table
           { Procedure1.seed = 1; set_count = 0; nmax = 2;
             mode = Procedure1.Definition1 }));
  Alcotest.(check bool) "bad nmax" true
    (raises_invalid (fun () ->
         Procedure1.run table
           { Procedure1.seed = 1; set_count = 1; nmax = 0;
             mode = Procedure1.Definition1 }))

let test_procedure1_untracked_fault () =
  let table = Detection_table.build (Example.circuit ()) in
  let outcome =
    Procedure1.run ~report_faults:[| 0 |] table
      { Procedure1.seed = 1; set_count = 2; nmax = 1;
        mode = Procedure1.Definition1 }
  in
  Alcotest.(check bool) "untracked gj rejected" true
    (raises_invalid (fun () ->
         Procedure1.detected_count outcome ~n:1 ~gj:5));
  Alcotest.(check bool) "out-of-range n rejected" true
    (raises_invalid (fun () -> Procedure1.detected_count outcome ~n:2 ~gj:0))

let test_good_of_vectors_errors () =
  let net = Example.circuit () in
  Alcotest.(check bool) "empty patterns" true
    (raises_invalid (fun () -> Good.of_vectors net [||]))

let test_eval_arity_errors () =
  let net = Example.circuit () in
  Alcotest.(check bool) "assignment arity" true
    (raises_invalid (fun () -> Eval.eval_assignment net [| true |]));
  Alcotest.(check bool) "vector range" true
    (raises_invalid (fun () -> Eval.eval_vector net 16));
  Alcotest.(check bool) "vector negative" true
    (raises_invalid (fun () -> Eval.eval_vector net (-1)))

let test_cube_errors () =
  Alcotest.(check bool) "contains arity" true
    (raises_invalid (fun () ->
         Cube.contains (Cube.of_string "01") (Cube.of_string "011")));
  Alcotest.(check bool) "merge arity" true
    (raises_invalid (fun () ->
         Cube.merge_distance1 (Cube.of_string "0") (Cube.of_string "01")))

let test_encode_errors () =
  Alcotest.(check bool) "zero states" true
    (raises_invalid (fun () -> Encode.bit_count Encode.Binary ~states:0));
  Alcotest.(check bool) "index out of range" true
    (raises_invalid (fun () -> Encode.code Encode.Gray ~states:4 4))

let test_multilevel_bad_fanin () =
  let net = Example.circuit () in
  Alcotest.(check bool) "max_fanin < 2" true
    (raises_invalid (fun () -> Multilevel.decompose ~max_fanin:1 net))

let test_partition_bad_args () =
  let net = Example.circuit () in
  Alcotest.(check bool) "max_inputs < 1" true
    (raises_invalid (fun () -> Partition.blocks net ~max_inputs:0))

let test_partition_single_block () =
  (* Generous budget: everything lands in one block equal to the whole
     circuit's cones. *)
  let net = Example.circuit () in
  let blocks = Partition.blocks net ~max_inputs:16 in
  Alcotest.(check int) "one block" 1 (List.length blocks);
  let block = List.hd blocks in
  Alcotest.(check int) "all outputs" 3 (Array.length block.Partition.outputs)

let test_defect_level_errors () =
  let net = Example.circuit () in
  Alcotest.(check bool) "empty test set" true
    (raises_invalid (fun () -> Defect_level.compute net ~vectors:[||]));
  let dl = Defect_level.compute net ~vectors:[| 1; 2 |] in
  Alcotest.(check bool) "bad q" true
    (raises_invalid (fun () -> Defect_level.escape_probability ~q:1.5 dl))

let test_line_display_number_unknown () =
  let net = Example.circuit () in
  Alcotest.(check bool) "bogus line" true
    (raises_invalid (fun () ->
         Line.display_number net (Line.Branch { gate = 4; pin = 0 })))

let test_word_input_pattern_errors () =
  Alcotest.(check bool) "bad bit" true
    (raises_invalid (fun () ->
         Word.input_pattern ~universe:16 ~batch:0 ~bit:4 ~pi_count:4))

let test_detection_table_keep_undetectable () =
  (* y = OR(a, NOT a): constant 1; y/1 is undetectable. *)
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_input b ~name:"a" in
  let na = Netlist.Builder.add_gate b ~kind:Gate.Not ~fanins:[| a |] ~name:"na" in
  let y = Netlist.Builder.add_gate b ~kind:Gate.Or ~fanins:[| a; na |] ~name:"y" in
  Netlist.Builder.set_outputs b [| y |];
  let net = Netlist.Builder.finalize b in
  let dropped = Detection_table.build net in
  let kept = Detection_table.build ~keep_undetectable_targets:true net in
  Alcotest.(check bool) "kept has more targets" true
    (Detection_table.target_count kept > Detection_table.target_count dropped);
  Alcotest.(check bool) "dropped counts them" true
    (Detection_table.undetectable_target_count dropped > 0)

let test_find_untargeted_unknown_node () =
  let table = Detection_table.build (Example.circuit ()) in
  Alcotest.(check bool) "unknown node" true
    (raises_invalid (fun () ->
         Detection_table.find_untargeted table ~victim:"nope"
           ~victim_value:true ~aggressor:"9" ~aggressor_value:false))

let test_rng_float_range () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_bitvec_content_key () =
  let a = Bitvec.of_list 100 [ 1; 63 ] in
  let b = Bitvec.of_list 100 [ 1; 63 ] in
  let c = Bitvec.of_list 100 [ 1; 62 ] in
  let d = Bitvec.of_list 101 [ 1; 63 ] in
  Alcotest.(check string) "equal contents equal keys"
    (Bitvec.content_key a) (Bitvec.content_key b);
  Alcotest.(check bool) "different contents differ" true
    (Bitvec.content_key a <> Bitvec.content_key c);
  Alcotest.(check bool) "different lengths differ" true
    (Bitvec.content_key a <> Bitvec.content_key d)

let () =
  Alcotest.run "edge-cases"
    [
      ( "degenerate-circuits",
        [
          Alcotest.test_case "no untargeted faults" `Quick
            test_empty_untargeted_analysis;
          Alcotest.test_case "inverter-chain collapse" `Quick
            test_collapse_inverter_chain;
          Alcotest.test_case "undetectable targets kept/dropped" `Quick
            test_detection_table_keep_undetectable;
        ] );
      ( "errors",
        [
          Alcotest.test_case "procedure1 config" `Quick
            test_procedure1_bad_config;
          Alcotest.test_case "procedure1 untracked fault" `Quick
            test_procedure1_untracked_fault;
          Alcotest.test_case "good of_vectors" `Quick
            test_good_of_vectors_errors;
          Alcotest.test_case "eval arity" `Quick test_eval_arity_errors;
          Alcotest.test_case "cube arity" `Quick test_cube_errors;
          Alcotest.test_case "encode" `Quick test_encode_errors;
          Alcotest.test_case "multilevel fanin" `Quick
            test_multilevel_bad_fanin;
          Alcotest.test_case "partition args" `Quick test_partition_bad_args;
          Alcotest.test_case "defect level" `Quick test_defect_level_errors;
          Alcotest.test_case "line display number" `Quick
            test_line_display_number_unknown;
          Alcotest.test_case "word input pattern" `Quick
            test_word_input_pattern_errors;
          Alcotest.test_case "find_untargeted" `Quick
            test_find_untargeted_unknown_node;
        ] );
      ( "misc",
        [
          Alcotest.test_case "partition single block" `Quick
            test_partition_single_block;
          Alcotest.test_case "rng float range" `Quick test_rng_float_range;
          Alcotest.test_case "bitvec content key" `Quick
            test_bitvec_content_key;
        ] );
    ]
