(* Shared test helpers: random circuit generation for property tests. *)

module Rng = Ndetect_util.Rng
module Gate = Ndetect_circuit.Gate
module Netlist = Ndetect_circuit.Netlist

let gate_kinds =
  [| Gate.Buf; Gate.Not; Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor;
     Gate.Xnor |]

(* A random connected combinational circuit; delegates to the library's
   generator so tests exercise the public API. *)
let random_circuit ~seed ~inputs ~gates =
  Ndetect_suite.Random_circuit.generate ~seed ~inputs ~gates ()

let circuit_arbitrary =
  QCheck.make
    ~print:(fun (seed, inputs, gates) ->
      Printf.sprintf "seed=%d inputs=%d gates=%d" seed inputs gates)
    QCheck.Gen.(
      triple (int_bound 1_000_000) (int_range 2 6) (int_range 1 25))

let apply_circuit f (seed, inputs, gates) =
  f (random_circuit ~seed ~inputs ~gates)

(* Wrap a qcheck property as an alcotest case. Honors NDETECT_QCHECK_SEED
   so a failing seed printed by a CI run can be replayed exactly:
   NDETECT_QCHECK_SEED=1234 dune runtest. *)
let qcheck test =
  let rand =
    match Sys.getenv_opt "NDETECT_QCHECK_SEED" with
    | None -> None
    | Some s ->
      Option.map
        (fun n -> Random.State.make [| n |])
        (int_of_string_opt (String.trim s))
  in
  QCheck_alcotest.to_alcotest ?rand test

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0
