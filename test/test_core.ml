module Detection_table = Ndetect_core.Detection_table
module Worst_case = Ndetect_core.Worst_case
module Procedure1 = Ndetect_core.Procedure1
module Definition2 = Ndetect_core.Definition2
module Average_case = Ndetect_core.Average_case
module Analysis = Ndetect_core.Analysis
module Bitvec = Ndetect_util.Bitvec
module Example = Ndetect_suite.Example

let example_table =
  let t = lazy (Detection_table.build (Example.circuit ())) in
  fun () -> Lazy.force t

let example_worst =
  let w = lazy (Worst_case.compute (example_table ())) in
  fun () -> Lazy.force w

let find_g0 table =
  let victim, vv, aggressor, av = Example.g0 in
  Option.get
    (Detection_table.find_untargeted table ~victim ~victim_value:vv
       ~aggressor ~aggressor_value:av)

let find_g6 table =
  let victim, vv, aggressor, av = Example.g6 in
  Option.get
    (Detection_table.find_untargeted table ~victim ~victim_value:vv
       ~aggressor ~aggressor_value:av)

let test_table_counts () =
  let table = example_table () in
  Alcotest.(check int) "universe" 16 (Detection_table.universe table);
  Alcotest.(check int) "16 targets" 16 (Detection_table.target_count table);
  Alcotest.(check int) "10 detectable bridges" 10
    (Detection_table.untargeted_count table);
  Alcotest.(check int) "2 undetectable bridges" 2
    (Detection_table.undetectable_untargeted_count table)

let test_table_m_values () =
  (* Table 1: M(g0, f) for the listed faults. *)
  let table = example_table () in
  let g0 = find_g0 table in
  let check_m fi expected =
    Alcotest.(check int)
      (Printf.sprintf "M(g0, f%d)" fi)
      expected
      (Detection_table.m table ~gj:g0 ~fi)
  in
  check_m 0 2;
  (* 1/1: {6,7} of {4,5,6,7} *)
  check_m 1 2;
  check_m 11 2;
  check_m 12 2;
  check_m 5 0 (* 4/0: {1,5,9,13} disjoint from {6,7} *)

let test_overlapping_targets () =
  let table = example_table () in
  let g0 = find_g0 table in
  Alcotest.(check (list int)) "F(g0) indices"
    [ 0; 1; 3; 9; 11; 12; 14 ]
    (Detection_table.overlapping_targets table ~gj:g0)

let test_worst_case_example () =
  let table = example_table () in
  let worst = example_worst () in
  let g0 = find_g0 table and g6 = find_g6 table in
  Alcotest.(check int) "nmin(g0) = 3" 3 (Worst_case.nmin worst g0);
  Alcotest.(check int) "nmin(g6) = 4" 4 (Worst_case.nmin worst g6);
  (* Table 1 pairwise values. *)
  let pair fi = Option.get (Worst_case.nmin_pair worst ~gj:g0 ~fi) in
  Alcotest.(check int) "nmin(g0, 1/1)" 3 (pair 0);
  Alcotest.(check int) "nmin(g0, 2/0)" 5 (pair 1);
  Alcotest.(check int) "nmin(g0, 3/0)" 5 (pair 3);
  Alcotest.(check int) "nmin(g0, 8/0)" 4 (pair 9);
  Alcotest.(check int) "nmin(g0, 9/1)" 11 (pair 11);
  Alcotest.(check int) "nmin(g0, 10/0)" 3 (pair 12);
  Alcotest.(check int) "nmin(g0, 11/0)" 11 (pair 14);
  Alcotest.(check (option int)) "no overlap, no pair" None
    (Worst_case.nmin_pair worst ~gj:g0 ~fi:5)

let test_worst_case_counters () =
  let worst = example_worst () in
  Alcotest.(check int) "all bounded" 0
    (Worst_case.count_at_least worst Worst_case.unbounded);
  let below_max =
    Worst_case.count_below worst (Option.get (Worst_case.max_finite_nmin worst))
  in
  Alcotest.(check int) "everything below max" 10 below_max;
  Alcotest.(check (float 1e-9)) "coverage at max" 1.0
    (Worst_case.coverage_guaranteed worst
       ~n:(Option.get (Worst_case.max_finite_nmin worst)));
  let h = Worst_case.histogram worst ~min_value:1 in
  Alcotest.(check int) "histogram mass" 10
    (List.fold_left (fun acc (_, c) -> acc + c) 0 h)

(* Worst-case semantics, both directions, on random circuits:
   - an adversary can build an n-detection test set that misses g for
     every n < nmin(g) (take all vectors outside T(g));
   - every n-detection set with n >= nmin(g) detects g (checked on the
     random sets of Procedure 1). *)
let prop_nmin_adversarial_bound =
  QCheck.Test.make ~name:"U - T(g) is an (nmin-1)-detection adversary"
    ~count:25 Helpers.circuit_arbitrary
    (Helpers.apply_circuit (fun net ->
         let table = Detection_table.build net in
         let worst = Worst_case.compute table in
         let ok = ref true in
         for gj = 0 to Detection_table.untargeted_count table - 1 do
           let nmin = Worst_case.nmin worst gj in
           if nmin <> Worst_case.unbounded && nmin > 1 then begin
             let n = nmin - 1 in
             (* Every target must still reach min(n, N(f)) detections using
                only vectors outside T(g). *)
             for fi = 0 to Detection_table.target_count table - 1 do
               let avail =
                 Detection_table.target_n table fi
                 - Detection_table.m table ~gj ~fi
               in
               if avail < min n (Detection_table.target_n table fi) then
                 ok := false
             done
           end
         done;
         !ok))

let prop_nmin_guarantee =
  QCheck.Test.make ~name:"random n-detection sets detect g when n >= nmin"
    ~count:10 Helpers.circuit_arbitrary
    (Helpers.apply_circuit (fun net ->
         let table = Detection_table.build net in
         let worst = Worst_case.compute table in
         let config =
           { Procedure1.seed = 3; set_count = 20; nmax = 4;
             mode = Procedure1.Definition1 }
         in
         let outcome = Procedure1.run table config in
         let ok = ref true in
         for gj = 0 to Detection_table.untargeted_count table - 1 do
           let nmin = Worst_case.nmin worst gj in
           for n = 1 to config.Procedure1.nmax do
             if nmin <> Worst_case.unbounded && n >= nmin then
               if
                 Procedure1.detected_count outcome ~n ~gj
                 <> config.Procedure1.set_count
               then ok := false
           done
         done;
         !ok))

let prop_procedure1_sets_valid =
  QCheck.Test.make
    ~name:"Procedure 1 sets are n-detection test sets (Definition 1)"
    ~count:10 Helpers.circuit_arbitrary
    (Helpers.apply_circuit (fun net ->
         let table = Detection_table.build net in
         let config =
           { Procedure1.seed = 11; set_count = 8; nmax = 3;
             mode = Procedure1.Definition1 }
         in
         let outcome = Procedure1.run table config in
         let ok = ref true in
         for k = 0 to config.Procedure1.set_count - 1 do
           for n = 1 to config.Procedure1.nmax do
             let tests = Procedure1.test_set_at outcome ~n ~k in
             let member = Bitvec.of_list (Detection_table.universe table) tests in
             for fi = 0 to Detection_table.target_count table - 1 do
               let detections =
                 Bitvec.inter_count member (Detection_table.target_set table fi)
               in
               let demand = min n (Detection_table.target_n table fi) in
               if detections < demand then ok := false
             done
           done
         done;
         !ok))

let prop_procedure1_multi_output_valid =
  QCheck.Test.make
    ~name:"Multi_output sets remain Definition-1 n-detection sets" ~count:10
    Helpers.circuit_arbitrary
    (Helpers.apply_circuit (fun net ->
         let table = Detection_table.build net in
         if Detection_table.output_count table > 62 then true
         else begin
           let config =
             { Procedure1.seed = 29; set_count = 6; nmax = 3;
               mode = Procedure1.Multi_output }
           in
           let outcome = Procedure1.run table config in
           let ok = ref true in
           for k = 0 to config.Procedure1.set_count - 1 do
             let tests = Procedure1.test_set outcome ~k in
             let member =
               Bitvec.of_list (Detection_table.universe table) tests
             in
             for fi = 0 to Detection_table.target_count table - 1 do
               let detections =
                 Bitvec.inter_count member
                   (Detection_table.target_set table fi)
               in
               if detections < min 3 (Detection_table.target_n table fi)
               then ok := false
             done
           done;
           !ok
         end))

let prop_procedure1_monotone =
  QCheck.Test.make ~name:"d(n, g) is monotone in n" ~count:10
    Helpers.circuit_arbitrary
    (Helpers.apply_circuit (fun net ->
         let table = Detection_table.build net in
         let config =
           { Procedure1.seed = 17; set_count = 10; nmax = 5;
             mode = Procedure1.Definition1 }
         in
         let outcome = Procedure1.run table config in
         let ok = ref true in
         for gj = 0 to Detection_table.untargeted_count table - 1 do
           for n = 1 to config.Procedure1.nmax - 1 do
             if
               Procedure1.detected_count outcome ~n ~gj
               > Procedure1.detected_count outcome ~n:(n + 1) ~gj
             then ok := false
           done
         done;
         !ok))

let test_procedure1_deterministic () =
  let table = example_table () in
  let config =
    { Procedure1.seed = 42; set_count = 10; nmax = 2;
      mode = Procedure1.Definition1 }
  in
  let a = Procedure1.run table config and b = Procedure1.run table config in
  for k = 0 to 9 do
    Alcotest.(check (list int)) "same sets" (Procedure1.test_set a ~k)
      (Procedure1.test_set b ~k)
  done

let test_procedure1_table4_shape () =
  (* K = 10 sets for n = 1, 2 on the example, like the paper's Table 4. *)
  let table = example_table () in
  let config =
    { Procedure1.seed = 1; set_count = 10; nmax = 2;
      mode = Procedure1.Definition1 }
  in
  let outcome = Procedure1.run table config in
  for k = 0 to 9 do
    let t1 = Procedure1.test_set_at outcome ~n:1 ~k in
    let t2 = Procedure1.test_set_at outcome ~n:2 ~k in
    Alcotest.(check bool) "t1 subset of t2" true
      (List.for_all (fun v -> List.mem v t2) t1);
    Alcotest.(check bool) "t1 nonempty" true (t1 <> []);
    (* No duplicates. *)
    Alcotest.(check int) "t2 distinct" (List.length t2)
      (List.length (List.sort_uniq Int.compare t2))
  done;
  (* g6 has T = {12}: the probability estimate is d/K. *)
  let g6 = find_g6 table in
  let d1 = Procedure1.detected_count outcome ~n:1 ~gj:g6 in
  let d2 = Procedure1.detected_count outcome ~n:2 ~gj:g6 in
  Alcotest.(check bool) "d monotone" true (d1 <= d2);
  Alcotest.(check (float 1e-9)) "p = d/K"
    (float_of_int d2 /. 10.0)
    (Procedure1.probability outcome ~n:2 ~gj:g6)

let test_definition2_example () =
  let table = example_table () in
  let def2 = Definition2.create table in
  (* Fault 1/1 (index 0): any two tests of T = {4,5,6,7} share the core
     01-- which detects the fault, so no pair is "different". *)
  Alcotest.(check bool) "4 and 7 not different" false
    (Definition2.different def2 ~fi:0 4 7);
  Alcotest.(check bool) "same vector never different" false
    (Definition2.different def2 ~fi:0 5 5);
  let count, chain = Definition2.count_greedy def2 ~fi:0 [ 4; 5; 6; 7 ] in
  Alcotest.(check int) "greedy count 1" 1 count;
  Alcotest.(check (list int)) "chain" [ 4 ] chain;
  Alcotest.(check int) "exact count 1" 1
    (Definition2.count_exact def2 ~fi:0 [ 4; 5; 6; 7 ]);
  (* Fault 2/0 (index 1): T = {6,7,12..15}. Tests 6 (0110) and 12 (1100)
     share 0 only at x2=1 and x4=0: core -1-0 does not detect 2/0 (x1/x3
     unknown blocks propagation), so they are different detections. *)
  Alcotest.(check bool) "6 and 12 different for 2/0" true
    (Definition2.different def2 ~fi:1 6 12)

let test_definition2_symmetric () =
  let table = example_table () in
  let def2 = Definition2.create table in
  for fi = 0 to Detection_table.target_count table - 1 do
    for a = 0 to 15 do
      for b = 0 to 15 do
        Alcotest.(check bool) "symmetric"
          (Definition2.different def2 ~fi a b)
          (Definition2.different def2 ~fi b a)
      done
    done
  done

let prop_def2_greedy_le_exact =
  QCheck.Test.make ~name:"greedy Def2 count <= exact count" ~count:10
    Helpers.circuit_arbitrary
    (Helpers.apply_circuit (fun net ->
         let table = Detection_table.build net in
         let def2 = Definition2.create table in
         let universe = Detection_table.universe table in
         let ok = ref true in
         for fi = 0 to min 5 (Detection_table.target_count table - 1) do
           let tests =
             Bitvec.to_list (Detection_table.target_set table fi)
             |> List.filteri (fun i _ -> i < 8)
           in
           ignore universe;
           let greedy, chain = Definition2.count_greedy def2 ~fi tests in
           let exact = Definition2.count_exact def2 ~fi tests in
           if greedy > exact then ok := false;
           if List.length chain <> greedy then ok := false
         done;
         !ok))

let test_procedure1_def2_runs () =
  let table = example_table () in
  let config =
    { Procedure1.seed = 7; set_count = 10; nmax = 3;
      mode = Procedure1.Definition2 }
  in
  let outcome = Procedure1.run table config in
  (* Sets are still valid Definition-1 n-detection sets thanks to the
     fallback rule. *)
  for k = 0 to 9 do
    let tests = Procedure1.test_set outcome ~k in
    let member = Bitvec.of_list 16 tests in
    for fi = 0 to Detection_table.target_count table - 1 do
      let detections =
        Bitvec.inter_count member (Detection_table.target_set table fi)
      in
      Alcotest.(check bool) "fallback keeps Def1 validity" true
        (detections >= min 3 (Detection_table.target_n table fi));
      (* Chains contain only pairwise-different, detecting tests. *)
      let chain = Procedure1.chain_def2 outcome ~k ~fi in
      Alcotest.(check bool) "chain within T(f)" true
        (List.for_all
           (fun v -> Bitvec.get (Detection_table.target_set table fi) v)
           chain)
    done
  done

let test_output_sets_partition_detection () =
  (* Per-output detection sets union to the full detection set. *)
  let table = example_table () in
  for fi = 0 to Detection_table.target_count table - 1 do
    let sets = Detection_table.target_output_sets table ~fi in
    Alcotest.(check int) "one set per output" 3 (Array.length sets);
    let union =
      Array.fold_left Bitvec.union (Bitvec.create 16) sets
    in
    Alcotest.(check bool)
      (Detection_table.target_label table fi ^ " union")
      true
      (Bitvec.equal union (Detection_table.target_set table fi))
  done;
  (* Fault 2/0 (stem with fanout into gates 9 and 10) is observed at
     output 9 on {12..15} and output 10 on {6,7,14,15}. *)
  let sets = Detection_table.target_output_sets table ~fi:1 in
  Alcotest.(check (list int)) "at output 9" [ 12; 13; 14; 15 ]
    (Bitvec.to_list sets.(0));
  Alcotest.(check (list int)) "at output 10" [ 6; 7; 14; 15 ]
    (Bitvec.to_list sets.(1));
  Alcotest.(check (list int)) "at output 11" [] (Bitvec.to_list sets.(2))

let test_procedure1_multi_output () =
  let table = example_table () in
  let config =
    { Procedure1.seed = 13; set_count = 20; nmax = 3;
      mode = Procedure1.Multi_output }
  in
  let outcome = Procedure1.run table config in
  for k = 0 to config.Procedure1.set_count - 1 do
    let tests = Procedure1.test_set outcome ~k in
    let member = Bitvec.of_list 16 tests in
    for fi = 0 to Detection_table.target_count table - 1 do
      (* Fallback keeps Definition-1 validity. *)
      let detections =
        Bitvec.inter_count member (Detection_table.target_set table fi)
      in
      Alcotest.(check bool) "def1 validity" true
        (detections >= min 3 (Detection_table.target_n table fi));
      (* The recorded output mask is consistent with the set's tests. *)
      let sets = Detection_table.target_output_sets table ~fi in
      let expected_mask = ref 0 in
      List.iter
        (fun v ->
          Array.iteri
            (fun o set ->
              if Bitvec.get set v then expected_mask := !expected_mask lor (1 lsl o))
            sets)
        tests;
      Alcotest.(check int) "output mask" !expected_mask
        (Procedure1.output_mask outcome ~k ~fi)
    done
  done;
  (* Fault 2/0 can reach 2 distinct outputs: with n >= 2 every set must
     cover both. *)
  for k = 0 to config.Procedure1.set_count - 1 do
    Alcotest.(check int) "2/0 covers both outputs" 0b011
      (Procedure1.output_mask outcome ~k ~fi:1)
  done

let test_average_case_thresholds () =
  let row =
    Average_case.summarize_probabilities [| 1.0; 0.95; 0.52; 0.1; 0.0 |]
  in
  Alcotest.(check int) "faults" 5 row.Average_case.fault_count;
  Alcotest.(check (array int)) "cumulative"
    [| 1; 2; 2; 2; 2; 3; 3; 3; 3; 4; 5 |]
    row.Average_case.at_least;
  Alcotest.(check (float 1e-9)) "min" 0.0 row.Average_case.min_probability

let test_wilson_interval () =
  (* Symmetric around 0.5, shrinks with K, brackets the estimate. *)
  let lo, hi = Average_case.wilson_interval ~detected:50 ~trials:100 () in
  Alcotest.(check bool) "brackets p" true (lo < 0.5 && 0.5 < hi);
  Alcotest.(check (float 1e-6)) "symmetric at 0.5" (0.5 -. lo) (hi -. 0.5);
  let lo2, hi2 = Average_case.wilson_interval ~detected:5000 ~trials:10000 () in
  Alcotest.(check bool) "narrower with more trials" true (hi2 -. lo2 < hi -. lo);
  Alcotest.(check bool) "paper-scale precision" true (hi2 -. lo2 < 0.025);
  (* Extremes stay within [0, 1] and never degenerate. *)
  let lo3, hi3 = Average_case.wilson_interval ~detected:0 ~trials:10 () in
  Alcotest.(check (float 1e-9)) "lower bound clamps" 0.0 lo3;
  Alcotest.(check bool) "upper bound positive" true (hi3 > 0.0);
  Alcotest.(check bool) "rejects bad input" true
    (try
       ignore (Average_case.wilson_interval ~detected:11 ~trials:10 ());
       false
     with Invalid_argument _ -> true)

let test_average_case_empty () =
  let row = Average_case.summarize_probabilities [||] in
  Alcotest.(check int) "faults" 0 row.Average_case.fault_count;
  Alcotest.(check int) "last bucket" 0
    row.Average_case.at_least.(Array.length row.Average_case.at_least - 1)

let test_analysis_example () =
  let a = Analysis.analyze ~name:"example" (Example.circuit ()) in
  Alcotest.(check string) "name" "example" a.Analysis.summary.Analysis.circuit;
  Alcotest.(check int) "untargeted" 10
    a.Analysis.summary.Analysis.untargeted_faults;
  (* max nmin on the example is 4 < 11: no hard faults. *)
  Alcotest.(check int) "no hard faults" 0
    (Array.length (Analysis.hard_faults a ~nmax:10));
  Alcotest.(check int) "hard for nmax=3" 2
    (Array.length (Analysis.hard_faults a ~nmax:3));
  let pb = a.Analysis.summary.Analysis.percent_below in
  Alcotest.(check (float 1e-6)) "100% at n=4" 100.0 (List.assoc 4 pb)

let () =
  Alcotest.run "core"
    [
      ( "detection-table",
        [
          Alcotest.test_case "counts" `Quick test_table_counts;
          Alcotest.test_case "M values" `Quick test_table_m_values;
          Alcotest.test_case "overlapping targets" `Quick
            test_overlapping_targets;
        ] );
      ( "worst-case",
        [
          Alcotest.test_case "example (paper numbers)" `Quick
            test_worst_case_example;
          Alcotest.test_case "counters" `Quick test_worst_case_counters;
          Helpers.qcheck prop_nmin_adversarial_bound;
          Helpers.qcheck prop_nmin_guarantee;
        ] );
      ( "procedure1",
        [
          Alcotest.test_case "deterministic" `Quick
            test_procedure1_deterministic;
          Alcotest.test_case "table 4 shape" `Quick
            test_procedure1_table4_shape;
          Alcotest.test_case "definition 2 mode" `Quick
            test_procedure1_def2_runs;
          Alcotest.test_case "multi-output mode" `Quick
            test_procedure1_multi_output;
          Alcotest.test_case "per-output detection sets" `Quick
            test_output_sets_partition_detection;
          Helpers.qcheck prop_procedure1_sets_valid;
          Helpers.qcheck prop_procedure1_multi_output_valid;
          Helpers.qcheck prop_procedure1_monotone;
        ] );
      ( "definition2",
        [
          Alcotest.test_case "example pairs" `Quick test_definition2_example;
          Alcotest.test_case "symmetry" `Quick test_definition2_symmetric;
          Helpers.qcheck prop_def2_greedy_le_exact;
        ] );
      ( "average-case",
        [
          Alcotest.test_case "thresholds" `Quick test_average_case_thresholds;
          Alcotest.test_case "wilson interval" `Quick test_wilson_interval;
          Alcotest.test_case "empty" `Quick test_average_case_empty;
        ] );
      ( "analysis",
        [ Alcotest.test_case "example" `Quick test_analysis_example ] );
    ]
