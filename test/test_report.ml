module Ascii_table = Ndetect_report.Ascii_table
module Paper_tables = Ndetect_report.Paper_tables
module Analysis = Ndetect_core.Analysis
module Detection_table = Ndetect_core.Detection_table
module Procedure1 = Ndetect_core.Procedure1
module Average_case = Ndetect_core.Average_case
module Example = Ndetect_suite.Example

let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let test_ascii_render () =
  let out =
    Ascii_table.render ~header:[ "name"; "count" ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  let ls = lines out in
  Alcotest.(check int) "4 lines" 4 (List.length ls);
  (* All lines are equally wide (padded). *)
  let widths = List.map String.length ls in
  (match widths with
  | w :: rest ->
    List.iter
      (fun w' -> Alcotest.(check bool) "aligned" true (abs (w - w') <= 1))
      rest
  | [] -> Alcotest.fail "no output");
  Alcotest.(check bool) "right aligned count" true
    (Helpers.contains_substring out "   1")

let test_ascii_short_rows_padded () =
  let out = Ascii_table.render ~header:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  Alcotest.(check int) "3 lines" 3 (List.length (lines out))

let test_csv () =
  let out =
    Ascii_table.render_csv ~header:[ "a"; "b" ] [ [ "x,y"; "2" ] ]
  in
  Alcotest.(check string) "escaped" "a,b\nx;y,2\n" out

let example_analysis () = Analysis.analyze ~name:"example" (Example.circuit ())

let test_table1_contains_paper_rows () =
  let a = example_analysis () in
  let victim, vv, aggressor, av = Example.g0 in
  let gj =
    Option.get
      (Detection_table.find_untargeted a.Analysis.table ~victim
         ~victim_value:vv ~aggressor ~aggressor_value:av)
  in
  let out = Paper_tables.table1 a ~gj in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (Helpers.contains_substring out needle))
    [ "1/1"; "2/0"; "9/1"; "10/0"; "11/0"; "nmin((9,0,10,1)) = 3";
      "4 5 6 7" ]

let test_table2_blanks_after_saturation () =
  let a = example_analysis () in
  let out = Paper_tables.table2 [ a.Analysis.summary ] in
  (* The example saturates at n=4, so exactly one 100.00 appears. *)
  let count_occurrences s sub =
    let n = String.length s and m = String.length sub in
    let rec go i acc =
      if i + m > n then acc
      else if String.sub s i m = sub then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "one saturated column" 1
    (count_occurrences out "100.00")

let test_table3_filters_easy_circuits () =
  let a = example_analysis () in
  let out = Paper_tables.table3 [ a.Analysis.summary ] in
  (* No fault needs n >= 11 on the example: the circuit is filtered out. *)
  Alcotest.(check bool) "example filtered" false
    (Helpers.contains_substring out "example")

let test_figure2_histogram () =
  let a = example_analysis () in
  let out = Paper_tables.figure2 a.Analysis.worst ~min_value:1 in
  Alcotest.(check bool) "has bars" true (Helpers.contains_substring out "#");
  Alcotest.(check bool) "mentions threshold" true
    (Helpers.contains_substring out ">= 1")

let test_table4_rendering () =
  let a = example_analysis () in
  let outcome =
    Procedure1.run a.Analysis.table
      { Procedure1.seed = 1; set_count = 10; nmax = 2;
        mode = Procedure1.Definition1 }
  in
  let out = Paper_tables.table4 outcome in
  (* Header plus rule plus ten set rows. *)
  Alcotest.(check int) "12 lines" 12 (List.length (lines out) - 1);
  Alcotest.(check bool) "columns for both n" true
    (Helpers.contains_substring out "n=1" && Helpers.contains_substring out "n=2")

let test_table5_row_stops_at_total () =
  let row =
    {
      Paper_tables.circuit = "demo";
      hard_faults = 3;
      row = Average_case.summarize_probabilities [| 0.95; 0.95; 0.9 |];
    }
  in
  let out = Paper_tables.table5 ~nmax:10 [ row ] in
  (* All three faults have p >= 0.9: the row is "0 3" then blanks. *)
  Alcotest.(check bool) "has demo row" true (Helpers.contains_substring out "demo");
  Alcotest.(check bool) "does not spell out saturated tail" true
    (not (Helpers.contains_substring out "3  3"))

let test_table6_two_rows_per_circuit () =
  let mk p = Average_case.summarize_probabilities p in
  let out =
    Paper_tables.table6 ~nmax:10
      [ ("demo", 2, mk [| 0.4; 0.2 |], mk [| 0.9; 0.8 |]) ]
  in
  let body_lines = lines out in
  (* title + header + rule + 2 rows *)
  Alcotest.(check int) "5 lines" 5 (List.length body_lines);
  Alcotest.(check bool) "def columns" true
    (Helpers.contains_substring out "def")

let test_csv_variants () =
  let a = example_analysis () in
  let csv2 = Paper_tables.table2_csv [ a.Analysis.summary ] in
  let first_line =
    match String.split_on_char '\n' csv2 with l :: _ -> l | [] -> ""
  in
  Alcotest.(check string) "table2 csv header"
    "circuit,faults,n<=1,n<=2,n<=3,n<=4,n<=5,n<=10" first_line;
  Alcotest.(check bool) "has example row" true
    (Helpers.contains_substring csv2 "example,10,40.00");
  let fig = Paper_tables.figure2_csv a.Analysis.worst ~min_value:1 in
  Alcotest.(check bool) "figure2 csv rows" true
    (Helpers.contains_substring fig "nmin,faults" && Helpers.contains_substring fig "3,4");
  let row =
    {
      Paper_tables.circuit = "demo";
      hard_faults = 2;
      row = Average_case.summarize_probabilities [| 0.9; 0.4 |];
    }
  in
  let csv5 = Paper_tables.table5_csv [ row ] in
  Alcotest.(check bool) "table5 csv row" true
    (Helpers.contains_substring csv5 "demo,2,0,1,1,1,1,1,2")

let () =
  Alcotest.run "report"
    [
      ( "ascii",
        [
          Alcotest.test_case "render" `Quick test_ascii_render;
          Alcotest.test_case "short rows" `Quick test_ascii_short_rows_padded;
          Alcotest.test_case "csv" `Quick test_csv;
        ] );
      ( "csv", [ Alcotest.test_case "variants" `Quick test_csv_variants ] );
      ( "paper-tables",
        [
          Alcotest.test_case "table 1" `Quick test_table1_contains_paper_rows;
          Alcotest.test_case "table 2 saturation blanks" `Quick
            test_table2_blanks_after_saturation;
          Alcotest.test_case "table 3 filtering" `Quick
            test_table3_filters_easy_circuits;
          Alcotest.test_case "figure 2" `Quick test_figure2_histogram;
          Alcotest.test_case "table 4" `Quick test_table4_rendering;
          Alcotest.test_case "table 5 stops at total" `Quick
            test_table5_row_stops_at_total;
          Alcotest.test_case "table 6 shape" `Quick
            test_table6_two_rows_per_circuit;
        ] );
    ]
