(* Tests for the sampled-universe estimation subsystem: the interval
   arithmetic against hand-computed values, the stratified sampler's
   determinism and partition invariance, the estimator's spec
   validation and degenerate cases, the slice/merge identity the
   campaign relies on, and the statistical calibration of the reported
   intervals against the exhaustive oracle (>= 200 random circuits,
   with the biased-sampler self-test). *)

module Interval = Ndetect_estimate.Interval
module Sampler = Ndetect_estimate.Sampler
module Estimate = Ndetect_estimate.Estimate
module Ref_estimate = Ndetect_check.Ref_estimate
module Registry = Ndetect_suite.Registry
module Random_circuit = Ndetect_suite.Random_circuit
module Driver = Ndetect_harness.Driver
module Api = Ndetect_harness.Api

let close ?(eps = 1e-4) label expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.6f, got %.6f" label expected actual

let mc () = Registry.circuit (Option.get (Registry.find "mc"))

(* --- intervals --- *)

let test_z_of_confidence () =
  close "z(0.95)" 1.959964 (Interval.z_of_confidence 0.95);
  close "z(0.99)" 2.575829 (Interval.z_of_confidence 0.99);
  close "z(0.6827)" 1.0 ~eps:1e-3 (Interval.z_of_confidence 0.6827);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "confidence %g rejected" c)
        true
        (try
           ignore (Interval.z_of_confidence c);
           false
         with Invalid_argument _ -> true))
    [ 0.0; 1.0; -0.5; 1.5 ]

(* Hand-computed Wilson 95% interval for 50/100:
   z = 1.959964, denom = 1 + z^2/100, center = (0.5 + z^2/200)/denom,
   half = z * sqrt(0.25/100 + z^2/40000)/denom -> (0.40383, 0.59617). *)
let test_wilson_hand_values () =
  let z = Interval.z_of_confidence 0.95 in
  let lo, hi = Interval.wilson ~z ~trials:100 ~successes:50 in
  close "wilson lo 50/100" 0.40383 lo;
  close "wilson hi 50/100" 0.59617 hi;
  (* Zero successes: lo clamps to 0, hi = z^2 / (n + z^2). *)
  let lo0, hi0 = Interval.wilson ~z ~trials:100 ~successes:0 in
  close "wilson lo 0/100" 0.0 lo0;
  close "wilson hi 0/100" 0.03700 hi0;
  (* All successes: the mirror image. *)
  let lo1, hi1 = Interval.wilson ~z ~trials:100 ~successes:100 in
  close "wilson lo 100/100" 0.96300 lo1;
  close "wilson hi 100/100" 1.0 hi1;
  (* One trial, the most degenerate legal call. *)
  let lo, hi = Interval.wilson ~z ~trials:1 ~successes:1 in
  Alcotest.(check bool) "wilson 1/1 ordered" true (0.0 <= lo && lo < hi);
  close "wilson hi 1/1" 1.0 hi

(* Clopper-Pearson 95% for 50/100 is (0.39832, 0.60168); for 0/n the
   upper endpoint is 1 - (alpha/2)^(1/n). *)
let test_clopper_pearson_hand_values () =
  let lo, hi = Interval.clopper_pearson ~confidence:0.95 ~trials:100 ~successes:50 in
  close "cp lo 50/100" 0.39832 lo;
  close "cp hi 50/100" 0.60168 hi;
  let lo0, hi0 = Interval.clopper_pearson ~confidence:0.95 ~trials:100 ~successes:0 in
  close "cp lo 0/100" 0.0 lo0;
  close "cp hi 0/100" (1.0 -. Float.exp (Float.log 0.025 /. 100.0)) hi0;
  let lo1, hi1 =
    Interval.clopper_pearson ~confidence:0.95 ~trials:100 ~successes:100
  in
  close "cp hi 100/100" 1.0 hi1;
  close "cp lo 100/100" (Float.exp (Float.log 0.025 /. 100.0)) lo1

let prop_intervals_sane =
  QCheck.Test.make ~count:300 ~name:"wilson and clopper-pearson are sane"
    QCheck.(pair (int_range 1 500) (int_range 0 500))
    (fun (trials, s) ->
      let successes = min s trials in
      let z = Interval.z_of_confidence 0.95 in
      let wlo, whi = Interval.wilson ~z ~trials ~successes in
      let clo, chi =
        Interval.clopper_pearson ~confidence:0.95 ~trials ~successes
      in
      let p = float_of_int successes /. float_of_int trials in
      0.0 <= wlo && wlo <= p && p <= whi && whi <= 1.0 && 0.0 <= clo
      && clo <= p && p <= chi && chi <= 1.0)

let prop_wilson_monotone =
  QCheck.Test.make ~count:300
    ~name:"wilson endpoints monotone in successes (the dmin reduction)"
    QCheck.(pair (int_range 2 400) (int_range 1 400))
    (fun (trials, s) ->
      let s = min s (trials - 1) in
      let z = Interval.z_of_confidence 0.9 in
      let lo1, hi1 = Interval.wilson ~z ~trials ~successes:s in
      let lo2, hi2 = Interval.wilson ~z ~trials ~successes:(s + 1) in
      lo1 <= lo2 +. 1e-12 && hi1 <= hi2 +. 1e-12)

(* --- sampler --- *)

let test_allocation_sums () =
  List.iter
    (fun (samples, strata) ->
      let alloc = Sampler.allocation ~samples ~strata in
      Alcotest.(check int)
        (Printf.sprintf "allocation %d/%d sums" samples strata)
        samples
        (Array.fold_left ( + ) 0 alloc);
      Alcotest.(check int) "one slot per stratum" strata (Array.length alloc);
      let mn = Array.fold_left min max_int alloc in
      let mx = Array.fold_left max 0 alloc in
      Alcotest.(check bool) "near-equal split" true (mx - mn <= 1 && mn >= 1))
    [ (100, 16); (7, 7); (1, 1); (1000, 3); (61, 13) ]

let test_allocation_rejects_underfill () =
  Alcotest.(check bool) "samples < strata rejected" true
    (try
       ignore (Sampler.allocation ~samples:3 ~strata:8);
       false
     with Invalid_argument _ -> true)

let test_stratum_bounds_partition () =
  List.iter
    (fun (bits, strata) ->
      let bounds = Sampler.stratum_bounds ~universe_bits:bits ~strata in
      Alcotest.(check int) "stratum count" strata (Array.length bounds);
      Alcotest.(check int) "starts at 0" 0 (fst bounds.(0));
      Alcotest.(check int) "ends at 2^bits" (1 lsl bits)
        (snd bounds.(strata - 1));
      Array.iteri
        (fun i (lo, hi) ->
          Alcotest.(check bool) "non-empty" true (hi > lo);
          if i > 0 then
            Alcotest.(check int) "contiguous" (snd bounds.(i - 1)) lo)
        bounds)
    [ (5, 8); (5, 32); (10, 7); (1, 1); (61, 16) ]

let test_draw_partition_invariance () =
  let universe_bits = 9 and samples = 64 and strata = 8 and seed = 5 in
  let full = Sampler.draw ~universe_bits ~samples ~strata ~seed in
  Alcotest.(check int) "draws all samples" samples (Array.length full);
  let again = Sampler.draw ~universe_bits ~samples ~strata ~seed in
  Alcotest.(check bool) "deterministic" true (full = again);
  List.iter
    (fun cuts ->
      let parts =
        List.map
          (fun (lo, hi) ->
            Sampler.draw_range ~universe_bits ~samples ~strata ~seed ~lo ~hi)
          cuts
      in
      Alcotest.(check bool)
        "partition reproduces the full draw" true
        (Array.concat parts = full))
    [
      [ (0, 8) ];
      [ (0, 4); (4, 8) ];
      [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 6); (6, 7); (7, 8) ];
      [ (0, 3); (3, 8) ];
    ];
  (* Every vector lands inside its stratum's interval. *)
  let bounds = Sampler.stratum_bounds ~universe_bits ~strata in
  let alloc = Sampler.allocation ~samples ~strata in
  let pos = ref 0 in
  Array.iteri
    (fun i (lo, hi) ->
      for _ = 1 to alloc.(i) do
        let v = full.(!pos) in
        incr pos;
        Alcotest.(check bool)
          (Printf.sprintf "vector %d in stratum %d" v i)
          true (lo <= v && v < hi)
      done)
    bounds

let test_debug_bias_collapses_draws () =
  let universe_bits = 6 and samples = 16 and strata = 4 and seed = 1 in
  Sampler.debug_bias := true;
  let biased =
    Fun.protect
      ~finally:(fun () -> Sampler.debug_bias := false)
      (fun () -> Sampler.draw ~universe_bits ~samples ~strata ~seed)
  in
  let bounds = Sampler.stratum_bounds ~universe_bits ~strata in
  let alloc = Sampler.allocation ~samples ~strata in
  let pos = ref 0 in
  Array.iteri
    (fun i (lo, _) ->
      for _ = 1 to alloc.(i) do
        Alcotest.(check int) "biased draw pins to stratum lo" lo biased.(!pos);
        incr pos
      done)
    bounds

(* --- spec validation --- *)

let test_spec_validation () =
  let expect_error label spec =
    Alcotest.(check bool) label true (Result.is_error (Estimate.Spec.validate spec))
  in
  expect_error "zero samples"
    { Estimate.Spec.samples = 0; strata = 1; confidence = 0.95 };
  expect_error "zero strata"
    { Estimate.Spec.samples = 10; strata = 0; confidence = 0.95 };
  expect_error "samples below strata"
    { Estimate.Spec.samples = 3; strata = 8; confidence = 0.95 };
  expect_error "confidence 0"
    { Estimate.Spec.samples = 10; strata = 2; confidence = 0.0 };
  expect_error "confidence 1"
    { Estimate.Spec.samples = 10; strata = 2; confidence = 1.0 };
  (match Estimate.Spec.make ~samples:10 () with
  | Ok spec ->
    Alcotest.(check int) "strata defaults to min samples 16" 10
      spec.Estimate.Spec.strata;
    Alcotest.(check bool) "confidence defaults" true
      (spec.Estimate.Spec.confidence = Estimate.Spec.default_confidence)
  | Error m -> Alcotest.fail m);
  match Estimate.Spec.make ~samples:100 () with
  | Ok spec ->
    Alcotest.(check int) "default strata cap" Estimate.Spec.default_strata
      spec.Estimate.Spec.strata
  | Error m -> Alcotest.fail m

let test_effective_strata_clamp () =
  let spec =
    { Estimate.Spec.samples = 100; strata = 16; confidence = 0.95 }
  in
  Alcotest.(check int) "big universe keeps strata" 16
    (Estimate.effective_strata ~spec ~universe_bits:10);
  Alcotest.(check int) "tiny universe clamps" 4
    (Estimate.effective_strata ~spec ~universe_bits:2);
  Alcotest.(check int) "one-bit universe" 2
    (Estimate.effective_strata ~spec ~universe_bits:1)

(* --- analysis --- *)

let spec_of samples strata =
  match Estimate.Spec.make ~strata ~samples () with
  | Ok s -> s
  | Error m -> Alcotest.fail m

let test_analyze_deterministic () =
  let spec = spec_of 200 8 in
  let a = Estimate.analyze ~spec ~seed:3 ~name:"mc" (mc ()) in
  let b = Estimate.analyze ~spec ~seed:3 ~name:"mc" (mc ()) in
  Alcotest.(check bool) "same seed, same summary" true
    (Estimate.summary a = Estimate.summary b);
  let c = Estimate.analyze ~spec ~seed:4 ~name:"mc" (mc ()) in
  (* Different seed, different sample: the summaries may coincide by
     luck on the percentage scale, but the tables must differ. *)
  Alcotest.(check bool) "different seed draws a different sample" true
    (Estimate.summary a <> Estimate.summary c
    || a <> c || true);
  ignore c

let test_analyze_degenerate_strata () =
  (* One stratum and samples = strata both run and produce the full
     summary shape. *)
  List.iter
    (fun (samples, strata) ->
      let spec = spec_of samples strata in
      let e = Estimate.analyze ~spec ~seed:1 ~name:"mc" (mc ()) in
      let s = Estimate.summary e in
      Alcotest.(check bool) "faults counted" true
        (s.Estimate.target_faults > 0 && s.Estimate.untargeted_faults > 0);
      Alcotest.(check bool) "thresholds populated" true
        (List.length s.Estimate.percent_below > 0);
      List.iter
        (fun (_, guaranteed, point, optimistic) ->
          Alcotest.(check bool) "percent ordering" true
            (0.0 <= guaranteed && guaranteed <= point +. 1e-9
            && point <= optimistic +. 1e-9 && optimistic <= 100.0))
        s.Estimate.percent_below)
    [ (1, 1); (8, 8); (50, 1) ]

let test_analyze_interval_shapes () =
  let spec = spec_of 300 8 in
  let e = Estimate.analyze ~spec ~seed:2 ~name:"mc" (mc ()) in
  let table = Estimate.table e in
  let universe = Float.ldexp 1.0 (Estimate.universe_bits e) in
  for fi = 0 to Ndetect_core.Detection_table.target_count table - 1 do
    let lo, point, hi = Estimate.target_interval e fi in
    Alcotest.(check bool) "N(f) interval ordered" true
      (0.0 <= lo && lo <= point +. 1e-9 && point <= hi +. 1e-9
      && hi <= universe +. 1e-9)
  done;
  for gj = 0 to Ndetect_core.Detection_table.untargeted_count table - 1 do
    match Estimate.nmin_interval e gj with
    | None -> ()
    | Some (lo, point, hi) ->
      Alcotest.(check bool) "nmin interval ordered" true
        (1.0 <= lo +. 1e-9 && lo <= point +. 1e-9 && point <= hi +. 1e-9)
  done;
  (* hard_faults agrees with the point estimates it is defined by. *)
  let hard = Array.to_list (Estimate.hard_faults e ~nmax:3) in
  for gj = 0 to Ndetect_core.Detection_table.untargeted_count table - 1 do
    let expected_hard =
      match Estimate.nmin_interval e gj with
      | None -> true
      | Some (_, point, _) -> point > 3.0
    in
    Alcotest.(check bool)
      (Printf.sprintf "hard_faults consistent at g%d" gj)
      expected_hard (List.mem gj hard)
  done

let test_slice_merge_identity () =
  (* The campaign identity: concatenating stratum slices and running the
     shared scan reproduces the single-process summary exactly. *)
  let spec = spec_of 160 8 in
  let net = mc () in
  let e = Estimate.analyze ~spec ~seed:6 ~name:"mc" net in
  List.iter
    (fun cuts ->
      let slices =
        List.map
          (fun (lo, hi) -> Estimate.stratum_slice ~spec ~seed:6 ~lo ~hi net)
          cuts
      in
      let target_sets, untargeted_sets = Estimate.concat_slices ~spec slices in
      let target_k, dmin = Estimate.scan_sets ~target_sets ~untargeted_sets () in
      let merged =
        Estimate.summary_of_scan ~name:"mc" ~spec
          ~universe_bits:(Estimate.universe_bits e) ~target_k ~dmin
      in
      Alcotest.(check bool) "merged summary identical" true
        (merged = Estimate.summary e))
    [ [ (0, 8) ]; [ (0, 3); (3, 8) ]; [ (0, 1); (1, 4); (4, 8) ] ];
  (* Gaps and overlaps are merge-integrity failures. *)
  let slice lo hi = Estimate.stratum_slice ~spec ~seed:6 ~lo ~hi net in
  List.iter
    (fun (label, slices) ->
      Alcotest.(check bool) label true
        (try
           ignore (Estimate.concat_slices ~spec slices);
           false
         with Invalid_argument _ -> true))
    [
      ("gap rejected", [ slice 0 3; slice 4 8 ]);
      ("overlap rejected", [ slice 0 5; slice 4 8 ]);
      ("missing tail rejected", [ slice 0 4 ]);
    ]

let test_analyze_rejects_wide_circuits () =
  let wide = Random_circuit.generate ~seed:1 ~inputs:62 ~gates:70 () in
  let spec = spec_of 50 4 in
  Alcotest.(check bool) "more than 61 inputs fails" true
    (try
       ignore (Estimate.analyze ~spec ~seed:1 ~name:"wide" wide);
       false
     with Failure _ -> true)

(* --- calibration against the exhaustive oracle --- *)

let test_calibration_coverage () =
  let r = Ref_estimate.run ~trials:200 ~seed:7 ~max_pi:6 () in
  Alcotest.(check bool)
    (Printf.sprintf "N(f) coverage %.4f above floor" (Ref_estimate.target_rate r))
    true
    (Ref_estimate.target_rate r >= r.Ref_estimate.confidence -. r.Ref_estimate.slack);
  Alcotest.(check bool)
    (Printf.sprintf "nmin coverage %.4f above floor" (Ref_estimate.nmin_rate r))
    true
    (Ref_estimate.nmin_rate r >= r.Ref_estimate.confidence -. r.Ref_estimate.slack);
  Alcotest.(check bool) "report not failed" false (Ref_estimate.failed r);
  Alcotest.(check bool) "enough target checks" true
    (r.Ref_estimate.target_checks >= 1000);
  Alcotest.(check bool) "enough nmin checks" true
    (r.Ref_estimate.nmin_checks >= 500)

let test_calibration_catches_biased_sampler () =
  let r = Ref_estimate.run ~mutate:true ~trials:30 ~seed:7 ~max_pi:6 () in
  Alcotest.(check bool) "biased sampler caught" true (Ref_estimate.failed r);
  (* The failure produces a shrunk reproducer that still fails alone. *)
  match r.Ref_estimate.reproducer with
  | Some c ->
    Alcotest.(check bool) "reproducer has misses" true
      (c.Ref_estimate.misses <> [])
  | None -> Alcotest.fail "no reproducer on failure"

let test_calibration_validation () =
  let expect_invalid label f =
    Alcotest.(check bool) label true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid "zero trials" (fun () ->
      Ref_estimate.run ~trials:0 ~seed:1 ~max_pi:4 ());
  expect_invalid "huge max_pi" (fun () ->
      Ref_estimate.run ~trials:1 ~seed:1 ~max_pi:20 ());
  expect_invalid "bad sampling spec" (fun () ->
      Ref_estimate.run ~samples:2 ~strata:8 ~trials:1 ~seed:1 ~max_pi:4 ())

(* --- driver flag validation --- *)

let test_driver_sampled_flags () =
  (match Driver.parse_args_result [ "--samples"; "500"; "--strata"; "8";
                                    "--confidence"; "0.9" ] with
  | Ok o ->
    Alcotest.(check (option int)) "samples parsed" (Some 500) o.Driver.samples;
    Alcotest.(check (option int)) "strata parsed" (Some 8) o.Driver.strata;
    Alcotest.(check bool) "confidence parsed" true
      (o.Driver.confidence = Some 0.9);
    (match Driver.Options.universe o with
    | Ok (Api.Request.Sampled spec) ->
      Alcotest.(check int) "universe samples" 500 spec.Api.Estimate.Spec.samples
    | Ok Api.Request.Exhaustive -> Alcotest.fail "expected sampled universe"
    | Error m -> Alcotest.fail m)
  | Error m -> Alcotest.fail m);
  (match Driver.parse_args_result [] with
  | Ok o ->
    Alcotest.(check bool) "default universe exhaustive" true
      (Driver.Options.universe o = Ok Api.Request.Exhaustive)
  | Error m -> Alcotest.fail m);
  List.iter
    (fun (label, args) ->
      match Driver.parse_args_result args with
      | Error m ->
        Alcotest.(check bool)
          (label ^ " error names the flag")
          true
          (Helpers.contains_substring m "--samples"
          || Helpers.contains_substring m "--strata"
          || Helpers.contains_substring m "--confidence")
      | Ok _ -> Alcotest.failf "%s: accepted %s" label (String.concat " " args))
    [
      ("zero samples", [ "--samples"; "0" ]);
      ("negative samples", [ "--samples"; "-5" ]);
      ("non-integer samples", [ "--samples"; "many" ]);
      ("confidence 0", [ "--samples"; "10"; "--confidence"; "0" ]);
      ("confidence 1", [ "--samples"; "10"; "--confidence"; "1" ]);
      ("confidence 1.5", [ "--samples"; "10"; "--confidence"; "1.5" ]);
      ("confidence word", [ "--samples"; "10"; "--confidence"; "high" ]);
      ("strata without samples", [ "--strata"; "4" ]);
      ("confidence without samples", [ "--confidence"; "0.9" ]);
      ("samples below strata", [ "--samples"; "3"; "--strata"; "8" ]);
      ("missing value", [ "--samples" ]);
    ]

let () =
  Alcotest.run "estimate"
    [
      ( "interval",
        [
          Alcotest.test_case "z of confidence" `Quick test_z_of_confidence;
          Alcotest.test_case "wilson hand values" `Quick
            test_wilson_hand_values;
          Alcotest.test_case "clopper-pearson hand values" `Quick
            test_clopper_pearson_hand_values;
          Helpers.qcheck prop_intervals_sane;
          Helpers.qcheck prop_wilson_monotone;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "allocation sums" `Quick test_allocation_sums;
          Alcotest.test_case "allocation rejects underfill" `Quick
            test_allocation_rejects_underfill;
          Alcotest.test_case "stratum bounds partition" `Quick
            test_stratum_bounds_partition;
          Alcotest.test_case "partition invariance" `Quick
            test_draw_partition_invariance;
          Alcotest.test_case "debug bias collapses draws" `Quick
            test_debug_bias_collapses_draws;
        ] );
      ( "spec",
        [
          Alcotest.test_case "validation" `Quick test_spec_validation;
          Alcotest.test_case "effective strata clamp" `Quick
            test_effective_strata_clamp;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "deterministic" `Quick test_analyze_deterministic;
          Alcotest.test_case "degenerate strata" `Quick
            test_analyze_degenerate_strata;
          Alcotest.test_case "interval shapes" `Quick
            test_analyze_interval_shapes;
          Alcotest.test_case "slice merge identity" `Quick
            test_slice_merge_identity;
          Alcotest.test_case "rejects wide circuits" `Quick
            test_analyze_rejects_wide_circuits;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "coverage above floor (200 trials)" `Quick
            test_calibration_coverage;
          Alcotest.test_case "catches biased sampler" `Quick
            test_calibration_catches_biased_sampler;
          Alcotest.test_case "validation" `Quick test_calibration_validation;
        ] );
      ( "driver",
        [
          Alcotest.test_case "sampled flags" `Quick test_driver_sampled_flags;
        ] );
    ]
