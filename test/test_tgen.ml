module Netlist = Ndetect_circuit.Netlist
module Stuck = Ndetect_faults.Stuck
module Good = Ndetect_sim.Good
module Fault_sim = Ndetect_sim.Fault_sim
module Ternary = Ndetect_logic.Ternary
module Ternary_sim = Ndetect_sim.Ternary_sim
module Podem = Ndetect_tgen.Podem
module Ndet_atpg = Ndetect_tgen.Ndet_atpg
module Compact = Ndetect_tgen.Compact
module Bitvec = Ndetect_util.Bitvec
module Rng = Ndetect_util.Rng
module Example = Ndetect_suite.Example

let test_podem_finds_tests_example () =
  let net = Example.circuit () in
  let good = Good.compute net in
  Array.iter
    (fun fault ->
      match Podem.find_test net fault with
      | Podem.Test t ->
        (* The produced (possibly partial) test must detect the fault
           under pessimistic 3-valued simulation... *)
        Alcotest.(check bool)
          (Stuck.to_string net fault ^ " test detects")
          true
          (Ternary_sim.detects_stuck net fault t);
        (* ...and its zero-completion must be in the exhaustive T(f). *)
        let v = Podem.complete net t in
        Alcotest.(check bool) "completion detects" true
          (Fault_sim.detects_stuck good fault ~vector:v)
      | Podem.Untestable ->
        Alcotest.failf "%s wrongly reported untestable"
          (Stuck.to_string net fault)
      | Podem.Aborted ->
        Alcotest.failf "%s aborted" (Stuck.to_string net fault))
    (Stuck.collapse net)

(* PODEM is exact on these circuit sizes: it finds a test iff the
   exhaustive detection set is non-empty. *)
let prop_podem_complete =
  QCheck.Test.make ~name:"podem agrees with exhaustive detectability"
    ~count:25 Helpers.circuit_arbitrary
    (Helpers.apply_circuit (fun net ->
         let good = Good.compute net in
         Array.for_all
           (fun fault ->
             let detectable =
               not
                 (Bitvec.is_empty (Fault_sim.stuck_detection_set good fault))
             in
             match Podem.find_test net fault with
             | Podem.Test t ->
               detectable
               && Fault_sim.detects_stuck good fault
                    ~vector:(Podem.complete net t)
             | Podem.Untestable -> not detectable
             | Podem.Aborted -> false)
           (Stuck.collapse net)))

let test_podem_redundant_fault () =
  (* y = OR(a, NOT(a), b): y is constant 1, so y stuck-at-1 is
     undetectable and PODEM must prove it. *)
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_input b ~name:"a" in
  let b_in = Netlist.Builder.add_input b ~name:"b" in
  let na =
    Netlist.Builder.add_gate b ~kind:Ndetect_circuit.Gate.Not ~fanins:[| a |]
      ~name:"na"
  in
  let y =
    Netlist.Builder.add_gate b ~kind:Ndetect_circuit.Gate.Or
      ~fanins:[| a; na; b_in |] ~name:"y"
  in
  Netlist.Builder.set_outputs b [| y |];
  let net = Netlist.Builder.finalize b in
  let fault = { Stuck.line = Ndetect_circuit.Line.Stem y; value = true } in
  (match Podem.find_test net fault with
  | Podem.Untestable -> ()
  | Podem.Test _ -> Alcotest.fail "found a test for a redundant fault"
  | Podem.Aborted -> Alcotest.fail "aborted on a trivial redundancy")

let test_podem_randomized_diversity () =
  (* With an RNG, repeated runs on an easy fault produce several distinct
     tests (needed for n-detection generation). *)
  let net = Example.circuit () in
  let faults = Stuck.collapse net in
  let rng = Rng.create ~seed:99 in
  let vectors = Hashtbl.create 16 in
  for _ = 1 to 40 do
    match Podem.find_test ~rng net faults.(11) (* 9/1, 12 tests *) with
    | Podem.Test t -> Hashtbl.replace vectors (Podem.complete ~rng net t) ()
    | Podem.Untestable | Podem.Aborted -> Alcotest.fail "unexpected failure"
  done;
  Alcotest.(check bool) "several distinct tests" true
    (Hashtbl.length vectors >= 3)

let test_ndet_atpg_example () =
  let net = Example.circuit () in
  let good = Good.compute net in
  let faults = Stuck.collapse net in
  let n = 3 in
  let report = Ndet_atpg.generate ~seed:5 net ~n faults in
  Array.iteri
    (fun j fault ->
      let cap = min n (Bitvec.count (Fault_sim.stuck_detection_set good fault)) in
      Alcotest.(check bool)
        (Printf.sprintf "%s detected >= min(n, N)" (Stuck.to_string net fault))
        true
        (report.Ndet_atpg.detections.(j) >= cap))
    faults;
  (* The test set contains no duplicates. *)
  let tests = Array.to_list report.Ndet_atpg.tests in
  Alcotest.(check int) "no duplicates"
    (List.length tests)
    (List.length (List.sort_uniq Int.compare tests))

let test_ndet_atpg_detects_matches_naive () =
  let net = Example.circuit () in
  let good = Good.compute net in
  let faults = Stuck.collapse net in
  Array.iter
    (fun fault ->
      for v = 0 to 15 do
        Alcotest.(check bool) "detects agree"
          (Fault_sim.detects_stuck good fault ~vector:v)
          (Ndet_atpg.detects net fault ~vector:v)
      done)
    faults

let detection_matrix net =
  let good = Good.compute net in
  Array.map (Fault_sim.stuck_detection_set good) (Stuck.collapse net)

let test_greedy_cover_example () =
  let net = Example.circuit () in
  let detects = detection_matrix net in
  List.iter
    (fun n ->
      let tests = Compact.greedy_cover ~detects ~n ~universe:16 in
      let counts = Compact.detection_counts ~detects tests in
      Array.iteri
        (fun j c ->
          let demand = min n (Bitvec.count detects.(j)) in
          Alcotest.(check bool)
            (Printf.sprintf "fault %d covered %d times for n=%d" j c n)
            true (c >= demand))
        counts)
    [ 1; 2; 5 ]

let test_greedy_cover_size_grows_with_n () =
  let net = Example.circuit () in
  let detects = detection_matrix net in
  let size n = List.length (Compact.greedy_cover ~detects ~n ~universe:16) in
  Alcotest.(check bool) "monotone" true (size 1 <= size 2 && size 2 <= size 4)

let test_reverse_order_pass () =
  let net = Example.circuit () in
  let detects = detection_matrix net in
  (* Start from the full universe: compaction must keep coverage. *)
  let all_tests = List.init 16 Fun.id in
  List.iter
    (fun n ->
      let kept = Compact.reverse_order_pass ~detects ~n all_tests in
      Alcotest.(check bool) "smaller or equal" true
        (List.length kept <= List.length all_tests);
      let counts = Compact.detection_counts ~detects kept in
      Array.iteri
        (fun j c ->
          let demand = min n (Bitvec.count detects.(j)) in
          Alcotest.(check bool) "coverage kept" true (c >= demand))
        counts)
    [ 1; 2; 3 ]

let prop_greedy_cover_random =
  QCheck.Test.make ~name:"greedy cover meets demands on random circuits"
    ~count:20 Helpers.circuit_arbitrary
    (Helpers.apply_circuit (fun net ->
         let detects = detection_matrix net in
         let universe = Netlist.universe_size net in
         let n = 2 in
         let tests = Compact.greedy_cover ~detects ~n ~universe in
         let counts = Compact.detection_counts ~detects tests in
         let ok = ref true in
         Array.iteri
           (fun j c ->
             if c < min n (Bitvec.count detects.(j)) then ok := false)
           counts;
         !ok))

let () =
  Alcotest.run "tgen"
    [
      ( "podem",
        [
          Alcotest.test_case "example faults" `Quick
            test_podem_finds_tests_example;
          Alcotest.test_case "redundant fault" `Quick
            test_podem_redundant_fault;
          Alcotest.test_case "randomized diversity" `Quick
            test_podem_randomized_diversity;
          Helpers.qcheck prop_podem_complete;
        ] );
      ( "ndet-atpg",
        [
          Alcotest.test_case "n-detection on example" `Quick
            test_ndet_atpg_example;
          Alcotest.test_case "detects matches simulator" `Quick
            test_ndet_atpg_detects_matches_naive;
        ] );
      ( "compact",
        [
          Alcotest.test_case "greedy cover" `Quick test_greedy_cover_example;
          Alcotest.test_case "size grows with n" `Quick
            test_greedy_cover_size_grows_with_n;
          Alcotest.test_case "reverse-order pass" `Quick
            test_reverse_order_pass;
          Helpers.qcheck prop_greedy_cover_random;
        ] );
    ]
