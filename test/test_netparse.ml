module Bench_format = Ndetect_netparse.Bench_format
module Kiss2 = Ndetect_netparse.Kiss2
module Netlist = Ndetect_circuit.Netlist
module Gate = Ndetect_circuit.Gate
module Eval = Ndetect_sim.Eval
module Ternary = Ndetect_logic.Ternary

let simple_bench =
  {|# a small circuit
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
OUTPUT(n1)
n1 = NOT(a)
y = AND(n1, b, c)
|}

let test_bench_parse () =
  let net = Bench_format.parse simple_bench in
  Alcotest.(check int) "inputs" 3 (Netlist.input_count net);
  Alcotest.(check int) "outputs" 2 (Array.length (Netlist.outputs net));
  let y = Option.get (Netlist.find_by_name net "y") in
  Alcotest.(check bool) "y kind" true
    (Gate.equal_kind (Netlist.kind net y) Gate.And);
  Alcotest.(check int) "y arity" 3 (Array.length (Netlist.fanins net y))

let test_bench_out_of_order () =
  (* Gates defined before their fanins parse fine. *)
  let src =
    "INPUT(a)\nOUTPUT(y)\ny = OR(m, a)\nm = NOT(a)\n"
  in
  let net = Bench_format.parse src in
  Alcotest.(check int) "nodes" 3 (Netlist.node_count net)

let test_bench_semantics () =
  let net = Bench_format.parse simple_bench in
  (* y = !a & b & c; inputs in declaration order a b c, a is MSB. *)
  let expect_y v = v land 0b100 = 0 && v land 0b010 <> 0 && v land 0b001 <> 0 in
  for v = 0 to 7 do
    let out = Eval.outputs_of_vector net v in
    Alcotest.(check bool) (Printf.sprintf "y(%d)" v) (expect_y v) out.(0)
  done

let test_bench_roundtrip () =
  let net = Bench_format.parse simple_bench in
  let printed = Bench_format.print net in
  let net2 = Bench_format.parse printed in
  Alcotest.(check int) "same node count" (Netlist.node_count net)
    (Netlist.node_count net2);
  for v = 0 to 7 do
    Alcotest.(check (array bool)) "same function"
      (Eval.outputs_of_vector net v)
      (Eval.outputs_of_vector net2 v)
  done

let check_parse_error src =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Bench_format.parse src);
       false
     with Bench_format.Parse_error _ -> true)

let test_bench_errors () =
  check_parse_error "INPUT(a)\nOUTPUT(y)\ny = FROB(a, a)\n";
  check_parse_error "INPUT(a)\nOUTPUT(y)\ny = AND(a, zz)\n";
  check_parse_error "INPUT(a)\nOUTPUT(y)\ny = AND(a, y)\n";
  (* combinational cycle *)
  check_parse_error "INPUT(a)\nOUTPUT(y)\ny = NOT(z)\nz = NOT(y)\n";
  (* redefinition *)
  check_parse_error "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n";
  (* no outputs *)
  check_parse_error "INPUT(a)\nx = NOT(a)\n";
  (* arity *)
  check_parse_error "INPUT(a)\nOUTPUT(y)\ny = AND(a)\n"

let kiss_text =
  {|.i 2
.o 1
.s 2
.p 4
.r s0
0- s0 s0 0
1- s0 s1 0
-1 s1 s0 1
-0 s1 s1 1
.e
|}

let test_kiss2_parse () =
  let fsm = Kiss2.parse kiss_text in
  Alcotest.(check int) "inputs" 2 fsm.Kiss2.input_bits;
  Alcotest.(check int) "outputs" 1 fsm.Kiss2.output_bits;
  Alcotest.(check int) "states" 2 (Array.length fsm.Kiss2.state_names);
  Alcotest.(check int) "products" 4 (Array.length fsm.Kiss2.transitions);
  Alcotest.(check string) "reset" "s0" fsm.Kiss2.reset_state;
  Alcotest.(check int) "state index" 1 (Kiss2.state_index fsm "s1");
  let t0 = fsm.Kiss2.transitions.(0) in
  Alcotest.(check bool) "dontcare input" true
    (Ternary.equal t0.Kiss2.input.(1) Ternary.X)

let test_kiss2_roundtrip () =
  let fsm = Kiss2.parse kiss_text in
  let fsm2 = Kiss2.parse (Kiss2.print fsm) in
  Alcotest.(check int) "products" (Array.length fsm.Kiss2.transitions)
    (Array.length fsm2.Kiss2.transitions);
  Alcotest.(check string) "reset" fsm.Kiss2.reset_state fsm2.Kiss2.reset_state;
  Alcotest.(check (array string)) "states" fsm.Kiss2.state_names
    fsm2.Kiss2.state_names

let check_kiss_error src =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Kiss2.parse src);
       false
     with Kiss2.Parse_error _ -> true)

let test_kiss2_errors () =
  (* wrong declared product count *)
  check_kiss_error ".i 1\n.o 1\n.p 2\n0 s0 s0 0\n.e\n";
  (* wrong field width *)
  check_kiss_error ".i 2\n.o 1\n011 s0 s1 0\n.e\n";
  check_kiss_error ".i 2\n.o 1\n01 s0 s1 00\n.e\n";
  (* transition before .i *)
  check_kiss_error "01 s0 s1 0\n.e\n";
  (* unknown reset state *)
  check_kiss_error ".i 1\n.o 1\n.r nowhere\n0 s0 s0 0\n.e\n";
  (* no transitions *)
  check_kiss_error ".i 1\n.o 1\n.e\n"

let test_kiss2_comments_and_spacing () =
  let fsm =
    Kiss2.parse ".i 1\n.o 1\n# comment\n\n  0   s0   s1   1\n1 s1 s0 0\n.e\n"
  in
  Alcotest.(check int) "two rows" 2 (Array.length fsm.Kiss2.transitions)

module Pla = Ndetect_netparse.Pla
module Pla_synth = Ndetect_synth.Pla_synth

let pla_text =
  {|# adder-ish
.i 3
.o 2
.ilb a b cin
.ob sum cout
.p 7
001 10
010 10
100 10
111 10
11- 01
1-1 01
-11 01
.e
|}

let test_pla_parse () =
  let pla = Pla.parse pla_text in
  Alcotest.(check int) "inputs" 3 pla.Pla.input_bits;
  Alcotest.(check int) "outputs" 2 pla.Pla.output_bits;
  Alcotest.(check int) "rows" 7 (Array.length pla.Pla.rows);
  Alcotest.(check (array string)) "labels" [| "a"; "b"; "cin" |]
    pla.Pla.input_labels

let test_pla_synthesize_full_adder () =
  let pla = Pla.parse pla_text in
  let net = Pla_synth.synthesize pla in
  for v = 0 to 7 do
    let a = v land 4 <> 0 and b = v land 2 <> 0 and cin = v land 1 <> 0 in
    let ones = Bool.to_int a + Bool.to_int b + Bool.to_int cin in
    let out = Ndetect_sim.Eval.outputs_of_vector net v in
    Alcotest.(check bool) "sum" (ones land 1 = 1) out.(0);
    Alcotest.(check bool) "cout" (ones >= 2) out.(1)
  done

let test_pla_roundtrip () =
  let pla = Pla.parse pla_text in
  let pla2 = Pla.parse (Pla.print pla) in
  Alcotest.(check int) "same rows" (Array.length pla.Pla.rows)
    (Array.length pla2.Pla.rows);
  let net = Pla_synth.synthesize ~multilevel:false pla in
  let net2 = Pla_synth.synthesize ~multilevel:false pla2 in
  for v = 0 to 7 do
    Alcotest.(check (array bool)) "same function"
      (Ndetect_sim.Eval.outputs_of_vector net v)
      (Ndetect_sim.Eval.outputs_of_vector net2 v)
  done

let test_pla_errors () =
  let check src =
    Alcotest.(check bool) "raises" true
      (try
         ignore (Pla.parse src);
         false
       with Pla.Parse_error _ -> true)
  in
  check ".o 1\n1 1\n.e\n";
  (* missing .i *)
  check ".i 2\n.o 1\n111 1\n.e\n";
  (* wrong input width *)
  check ".i 2\n.o 1\n11 11\n.e\n";
  (* wrong output width *)
  check ".i 1\n.o 1\n.p 2\n1 1\n.e\n";
  (* .p mismatch *)
  check ".i 1\n.o 1\n.ilb a b\n1 1\n.e\n" (* .ilb arity *)

let test_pla_default_labels () =
  let pla = Pla.parse ".i 2\n.o 1\n11 1\n.e\n" in
  Alcotest.(check (array string)) "inputs" [| "x0"; "x1" |]
    pla.Pla.input_labels;
  Alcotest.(check (array string)) "outputs" [| "y0" |] pla.Pla.output_labels

let () =
  Alcotest.run "netparse"
    [
      ( "bench",
        [
          Alcotest.test_case "parse" `Quick test_bench_parse;
          Alcotest.test_case "out of order" `Quick test_bench_out_of_order;
          Alcotest.test_case "semantics" `Quick test_bench_semantics;
          Alcotest.test_case "roundtrip" `Quick test_bench_roundtrip;
          Alcotest.test_case "errors" `Quick test_bench_errors;
        ] );
      ( "kiss2",
        [
          Alcotest.test_case "parse" `Quick test_kiss2_parse;
          Alcotest.test_case "roundtrip" `Quick test_kiss2_roundtrip;
          Alcotest.test_case "errors" `Quick test_kiss2_errors;
          Alcotest.test_case "comments and spacing" `Quick
            test_kiss2_comments_and_spacing;
        ] );
      ( "pla",
        [
          Alcotest.test_case "parse" `Quick test_pla_parse;
          Alcotest.test_case "full adder semantics" `Quick
            test_pla_synthesize_full_adder;
          Alcotest.test_case "roundtrip" `Quick test_pla_roundtrip;
          Alcotest.test_case "errors" `Quick test_pla_errors;
          Alcotest.test_case "default labels" `Quick test_pla_default_labels;
        ] );
    ]
