(* Tests for the reproduction driver shared by bin/reproduce and
   bench/main. *)

module Driver = Ndetect_harness.Driver
module Checkpoint = Ndetect_harness.Checkpoint
module Registry = Ndetect_suite.Registry

let with_temp_dir f =
  let dir = Filename.temp_file "ndetect-test" "" in
  Sys.remove dir;
  Checkpoint.mkdir_recursive dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun entry -> Sys.remove (Filename.concat dir entry))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let small_options =
  Driver.Options.make ~tier:Registry.Small ~k:20 ~k2:10 ~seed:1 ~only:"all"
    ~quiet:true ()

let parse_ok args =
  match Driver.parse_args_result args with
  | Ok opts -> opts
  | Error m -> Alcotest.fail ("unexpected parse error: " ^ m)

let test_parse_args_defaults () =
  let opts = parse_ok [] in
  Alcotest.(check int) "k" 1000 opts.Driver.k;
  Alcotest.(check int) "k2" 200 opts.Driver.k2;
  Alcotest.(check string) "only" "all" opts.Driver.only;
  Alcotest.(check bool) "not quiet" false opts.Driver.quiet

let test_parse_args_full () =
  let opts =
    parse_ok
      [ "--tier"; "large"; "--k"; "42"; "--k2"; "7"; "--seed"; "9";
        "--only"; "Table5"; "--quiet" ]
  in
  Alcotest.(check bool) "tier" true (opts.Driver.tier = Registry.Large);
  Alcotest.(check int) "k" 42 opts.Driver.k;
  Alcotest.(check int) "k2" 7 opts.Driver.k2;
  Alcotest.(check int) "seed" 9 opts.Driver.seed;
  Alcotest.(check string) "only lowercased" "table5" opts.Driver.only;
  Alcotest.(check bool) "quiet" true opts.Driver.quiet

let test_parse_args_csv () =
  let opts = parse_ok [ "--csv"; "out/dir" ] in
  Alcotest.(check (option string)) "csv dir" (Some "out/dir")
    opts.Driver.csv_dir;
  Alcotest.(check (option string)) "default none" None
    (parse_ok []).Driver.csv_dir

let test_parse_args_errors () =
  Alcotest.(check bool) "bad tier" true
    (Result.is_error (Driver.parse_args_result [ "--tier"; "gigantic" ]));
  Alcotest.(check bool) "unknown flag" true
    (Result.is_error (Driver.parse_args_result [ "--frobnicate" ]))

let failure_message args =
  match Driver.parse_args_result args with
  | Ok _ -> Alcotest.fail "expected parse failure"
  | Error m -> m

let test_parse_args_friendly_messages () =
  let m = failure_message [ "--k"; "abc" ] in
  Alcotest.(check bool) "names flag and value" true
    (Helpers.contains_substring m "--k expects an integer, got \"abc\"");
  let m = failure_message [ "--seed" ] in
  Alcotest.(check bool) "missing value" true
    (Helpers.contains_substring m "--seed requires a value");
  let m = failure_message [ "--wat" ] in
  Alcotest.(check bool) "unknown arg quoted" true
    (Helpers.contains_substring m "unknown argument \"--wat\"");
  Alcotest.(check bool) "usage appended" true
    (Helpers.contains_substring m "usage: reproduce");
  let m = failure_message [ "--timeout-per-circuit"; "-3" ] in
  Alcotest.(check bool) "non-positive timeout" true
    (Helpers.contains_substring m "--timeout-per-circuit expects a positive")

let test_parse_args_result () =
  (match Driver.parse_args_result [ "--k"; "5" ] with
  | Ok opts -> Alcotest.(check int) "ok carries options" 5 opts.Driver.k
  | Error _ -> Alcotest.fail "expected Ok");
  (match Driver.parse_args_result [ "--k"; "abc" ] with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error m ->
    Alcotest.(check bool) "error names the flag" true
      (Helpers.contains_substring m "--k expects an integer");
    (* The deprecated raising shim reports the same message. *)
    let shim_message =
      match (Driver.parse_args [@alert "-deprecated"]) [ "--k"; "abc" ] with
      | _ -> Alcotest.fail "expected parse failure"
      | exception Failure shim -> shim
    in
    Alcotest.(check string) "parse_args raises same message" m shim_message)

(* Flag combinations that every individual parser accepts but that are
   wrong as a whole must be an [Error], not a run that silently does
   nothing (an unknown --only section selects zero tables; k/k2 < 1
   render every sampled table vacuously). *)
let test_parse_args_rejects_contradictions () =
  let expect_error label args needle =
    match Driver.parse_args_result args with
    | Ok _ -> Alcotest.fail (label ^ ": expected Error")
    | Error m ->
      Alcotest.(check bool)
        (label ^ " message mentions cause")
        true
        (Helpers.contains_substring m needle)
  in
  expect_error "unknown section" [ "--only"; "table9" ] "unknown section";
  expect_error "zero k" [ "--k"; "0" ] "--k expects a positive";
  expect_error "negative k2" [ "--k2"; "-5" ] "--k2 expects a positive";
  expect_error "resume without checkpoint" [ "--resume" ]
    "--resume requires --checkpoint";
  (* Campaign flags: degenerate values and contradictory combinations. *)
  expect_error "zero workers" [ "--workers"; "0" ]
    "--workers expects an integer >= 1";
  expect_error "non-integer workers" [ "--workers"; "two" ]
    "--workers expects an integer >= 1";
  expect_error "sub-second lease" [ "--lease-secs"; "0.5" ]
    "--lease-secs expects a number of seconds >= 1";
  expect_error "zero retries" [ "--max-unit-retries"; "0" ]
    "--max-unit-retries expects an integer >= 1";
  expect_error "chaos without workers" [ "--chaos" ]
    "--chaos requires --workers >= 2";
  expect_error "chaos with one worker" [ "--chaos"; "--workers"; "1" ]
    "--chaos requires --workers >= 2";
  (* Case-insensitivity and the valid spellings stay accepted. *)
  List.iter
    (fun args ->
      match Driver.parse_args_result args with
      | Ok _ -> ()
      | Error m -> Alcotest.fail ("unexpected Error: " ^ m))
    [
      [ "--only"; "Table5" ];
      [ "--only"; "figure2" ];
      [ "--only"; "all" ];
      [ "--k"; "1" ];
      [ "--resume"; "--checkpoint"; "ck" ];
      [ "--workers"; "4"; "--lease-secs"; "30"; "--max-unit-retries"; "3" ];
      [ "--chaos"; "--workers"; "2" ];
    ];
  (* The parsed campaign values round-trip. *)
  match
    Driver.parse_args_result
      [ "--workers"; "4"; "--lease-secs"; "12.5"; "--max-unit-retries"; "5" ]
  with
  | Error m -> Alcotest.fail ("unexpected Error: " ^ m)
  | Ok opts ->
    Alcotest.(check (option int)) "workers" (Some 4) opts.Driver.workers;
    Alcotest.(check bool) "lease" true (opts.Driver.lease_secs = Some 12.5);
    Alcotest.(check (option int)) "retries" (Some 5)
      opts.Driver.max_unit_retries;
    Alcotest.(check bool) "chaos off by default" false opts.Driver.chaos

let test_parse_args_telemetry_flags () =
  let opts = parse_ok [ "--trace"; "out.jsonl"; "--metrics" ] in
  Alcotest.(check (option string)) "trace file" (Some "out.jsonl")
    opts.Driver.trace;
  Alcotest.(check bool) "metrics" true opts.Driver.metrics;
  let defaults = parse_ok [] in
  Alcotest.(check (option string)) "trace off by default" None
    defaults.Driver.trace;
  Alcotest.(check bool) "metrics off by default" false
    defaults.Driver.metrics;
  Alcotest.(check bool) "--trace requires a value" true
    (Helpers.contains_substring
       (failure_message [ "--trace" ])
       "--trace requires a value")

let test_options_make () =
  Alcotest.(check bool) "no overrides = defaults" true
    (Driver.Options.make () = Driver.default_options);
  let opts = Driver.Options.make ~k:7 ~trace:"t.jsonl" () in
  Alcotest.(check int) "override applied" 7 opts.Driver.k;
  Alcotest.(check (option string)) "option field" (Some "t.jsonl")
    opts.Driver.trace;
  Alcotest.(check int) "untouched field keeps default"
    Driver.default_options.Driver.k2 opts.Driver.k2

let test_parse_args_supervision_flags () =
  let opts =
    parse_ok
      [ "--checkpoint"; "ck/dir"; "--resume"; "--timeout-per-circuit"; "2.5";
        "--inject"; "crash=analyze:mc" ]
  in
  Alcotest.(check (option string)) "checkpoint" (Some "ck/dir")
    opts.Driver.checkpoint_dir;
  Alcotest.(check bool) "resume" true opts.Driver.resume;
  Alcotest.(check bool) "timeout" true
    (opts.Driver.timeout_per_circuit = Some 2.5);
  Alcotest.(check (option string)) "inject" (Some "crash=analyze:mc")
    opts.Driver.inject;
  Alcotest.(check bool) "resume needs checkpoint" true
    (Helpers.contains_substring
       (failure_message [ "--resume" ])
       "--resume requires --checkpoint");
  Alcotest.(check bool) "bad inject spec" true
    (Helpers.contains_substring
       (failure_message [ "--inject"; "frazzle=x" ])
       "--inject")

(* checkpoint *)

let stamp : Checkpoint.stamp =
  { Checkpoint.version = Checkpoint.version; seed = 1; tier = "small";
    k = 20; k2 = 10 }

let test_checkpoint_roundtrip () =
  with_temp_dir (fun dir ->
      let ck = Checkpoint.create ~dir ~stamp in
      Alcotest.(check bool) "absent" false (Checkpoint.mem ck ~key:"xs");
      Checkpoint.store ck ~key:"xs" [ 1; 2; 3 ];
      Alcotest.(check bool) "present" true (Checkpoint.mem ck ~key:"xs");
      Alcotest.(check (option (list int))) "roundtrip" (Some [ 1; 2; 3 ])
        (Checkpoint.load ck ~key:"xs");
      (* Overwrite is atomic-replace, last write wins. *)
      Checkpoint.store ck ~key:"xs" [ 9 ];
      Alcotest.(check (option (list int))) "overwritten" (Some [ 9 ])
        (Checkpoint.load ck ~key:"xs"))

let test_checkpoint_stamp_mismatch () =
  with_temp_dir (fun dir ->
      let ck = Checkpoint.create ~dir ~stamp in
      Checkpoint.store ck ~key:"xs" [ 1 ];
      let other = Checkpoint.create ~dir ~stamp:{ stamp with seed = 2 } in
      Alcotest.(check (option (list int)))
        "different seed sees nothing" None
        (Checkpoint.load other ~key:"xs");
      let same = Checkpoint.create ~dir ~stamp in
      Alcotest.(check (option (list int))) "same stamp still loads"
        (Some [ 1 ])
        (Checkpoint.load same ~key:"xs"))

let test_checkpoint_corruption () =
  with_temp_dir (fun dir ->
      let ck = Checkpoint.create ~dir ~stamp in
      Checkpoint.store ck ~key:"xs" [ 1 ];
      (* Clobber the entry on disk; load must degrade to None, not raise. *)
      Array.iter
        (fun entry ->
          let oc = open_out (Filename.concat dir entry) in
          output_string oc "garbage";
          close_out oc)
        (Sys.readdir dir);
      Alcotest.(check (option (list int))) "corrupt entry ignored" None
        (Checkpoint.load ck ~key:"xs"))

let test_write_atomic () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "out.csv" in
      Checkpoint.write_atomic ~path "a,b\n1,2\n";
      Alcotest.(check string) "contents" "a,b\n1,2\n"
        (In_channel.with_open_bin path In_channel.input_all);
      Checkpoint.write_atomic ~path "new\n";
      Alcotest.(check string) "replaced" "new\n"
        (In_channel.with_open_bin path In_channel.input_all);
      (* No stray temp files left behind. *)
      Alcotest.(check (list string)) "single file" [ "out.csv" ]
        (Array.to_list (Sys.readdir dir)))

(* table cache *)

module Table_cache = Ndetect_harness.Table_cache
module Detection_table = Ndetect_core.Detection_table
module Fault_sim = Ndetect_sim.Fault_sim
module Bitvec = Ndetect_util.Bitvec

let tables_identical a b =
  Detection_table.target_count a = Detection_table.target_count b
  && Detection_table.untargeted_count a = Detection_table.untargeted_count b
  && Detection_table.universe a = Detection_table.universe b
  && Detection_table.undetectable_target_count a
     = Detection_table.undetectable_target_count b
  && List.for_all
       (fun fi ->
         Bitvec.equal
           (Detection_table.target_set a fi)
           (Detection_table.target_set b fi)
         && Detection_table.target_label a fi = Detection_table.target_label b fi)
       (List.init (Detection_table.target_count a) Fun.id)
  && List.for_all
       (fun gj ->
         Bitvec.equal
           (Detection_table.untargeted_set a gj)
           (Detection_table.untargeted_set b gj)
         && Detection_table.untargeted_label a gj
            = Detection_table.untargeted_label b gj)
       (List.init (Detection_table.untargeted_count a) Fun.id)

let test_table_cache_roundtrip () =
  with_temp_dir (fun dir ->
      let net = Registry.circuit (Option.get (Registry.find "lion")) in
      let built = Detection_table.build net in
      let key = Table_cache.key net in
      Table_cache.store ~dir ~key built;
      match Table_cache.load ~dir ~key net with
      | None -> Alcotest.fail "expected a cache hit"
      | Some restored ->
        Alcotest.(check bool) "bit-identical tables" true
          (tables_identical built restored);
        (* The restored table feeds the analyses exactly like a built
           one: worst-case distributions agree entry for entry. *)
        let module Worst_case = Ndetect_core.Worst_case in
        Alcotest.(check (array int)) "same nmin distribution"
          (Worst_case.distribution (Worst_case.compute built))
          (Worst_case.distribution (Worst_case.compute restored)))

let test_table_cache_corruption () =
  with_temp_dir (fun dir ->
      let net = Registry.circuit (Option.get (Registry.find "lion")) in
      let key = Table_cache.key net in
      Table_cache.store ~dir ~key (Detection_table.build net);
      let path = Filename.concat dir (key ^ ".tbl") in
      (* Truncate mid-payload: the magic survives but the snapshot blob
         is torn. Load must miss, not raise. *)
      let raw = In_channel.with_open_bin path In_channel.input_all in
      let oc = open_out_bin path in
      output_string oc (String.sub raw 0 (String.length raw / 2));
      close_out oc;
      Alcotest.(check bool) "torn file is a miss" true
        (Table_cache.load ~dir ~key net = None);
      (* Arbitrary garbage (wrong magic). *)
      let oc = open_out_bin path in
      output_string oc "not a table at all";
      close_out oc;
      Alcotest.(check bool) "garbage is a miss" true
        (Table_cache.load ~dir ~key net = None))

(* Exhaustive damage sweep over the current (v3) format: truncations at
   structural boundaries and single-bit flips in every region — magic,
   header fields (version, key, digests, lengths), the alignment pad,
   the meta section, and the raw words (first, middle, last — the words
   are covered by their own FNV digest and the 62-bit range check, the
   meta by its digest) — must all degrade to a miss, never raise, never
   return a wrong table. Each must bump the "table_cache.corrupt"
   counter and delete the damaged file (corrupt entries can only miss
   again). *)
let test_table_cache_damage_sweep () =
  with_temp_dir (fun dir ->
      let module Telemetry = Ndetect_util.Telemetry in
      let net = Registry.circuit (Option.get (Registry.find "lion")) in
      let key = Table_cache.key net in
      Table_cache.store ~dir ~key (Detection_table.build net);
      let path = Filename.concat dir (key ^ ".tbl") in
      let pristine = In_channel.with_open_bin path In_channel.input_all in
      let len = String.length pristine in
      let header_end = String.index_from pristine 14 '\n' in
      (* Region boundaries straight from the header:
         "3 key meta_fnv meta_len words_off nwords fnv". The pad sits
         between header and meta, so meta ends exactly at words_off. *)
      let meta_len, words_off, nwords =
        match
          String.split_on_char ' '
            (String.sub pristine 14 (header_end - 14))
        with
        | [ _v; _key; _meta_fnv; meta_len; words_off; nwords; _fnv ] ->
          ( int_of_string meta_len,
            int_of_string words_off,
            int_of_string nwords )
        | _ -> Alcotest.fail "unexpected v3 header shape"
      in
      let pad_start = header_end + 1 in
      let meta_start = words_off - meta_len in
      Alcotest.(check int) "file size = words_off + 8*nwords" len
        (words_off + (8 * nwords));
      let write raw =
        let oc = open_out_bin path in
        output_string oc raw;
        close_out oc
      in
      let flip raw pos =
        let b = Bytes.of_string raw in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
        Bytes.to_string b
      in
      let expect_corrupt_miss label raw =
        write raw;
        let corrupt_before = Telemetry.counter_value "table_cache.corrupt" in
        Alcotest.(check bool)
          (label ^ " is a miss")
          true
          (Table_cache.load ~dir ~key net = None);
        Alcotest.(check int)
          (label ^ " counted as corrupt")
          (corrupt_before + 1)
          (Telemetry.counter_value "table_cache.corrupt");
        Alcotest.(check bool)
          (label ^ " file deleted")
          false (Sys.file_exists path)
      in
      (* Truncations: empty file, torn magic, torn header, meta torn,
         words torn mid-word and at the last byte. *)
      List.iter
        (fun cut ->
          expect_corrupt_miss
            (Printf.sprintf "truncated to %d/%d bytes" cut len)
            (String.sub pristine 0 cut))
        [ 0; 7; header_end - 3; meta_start; words_off - 1; words_off + 3;
          len - 8; len - 1 ];
      (* Single-bit flips, one per structural region: magic, version
         digit, key, digests/lengths, meta fixed fields, meta arrays,
         alignment pad (must be zero), first / middle / last word —
         including the top bit of a word, which an OCaml bigarray read
         cannot even see (Val_long drops bit 63) but the C digest pass
         over the raw mapped memory must catch. *)
      let top_bit_of_last_word =
        let b = Bytes.of_string pristine in
        (* Words are little-endian: byte 7 of the word holds bit 63. *)
        let pos = len - 1 in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x80));
        Bytes.to_string b
      in
      List.iter
        (fun pos ->
          expect_corrupt_miss
            (Printf.sprintf "bit flip at byte %d/%d" pos len)
            (flip pristine pos))
        ([ 0; 14; 16; header_end - 2; header_end - 1; meta_start;
           meta_start + 40; words_off - 1; words_off;
           words_off + (8 * (nwords / 2)); len - 1 ]
        @ (if meta_start > pad_start then [ pad_start ] else []));
      expect_corrupt_miss "top bit of last word" top_bit_of_last_word;
      (* And the pristine bytes restored still hit. *)
      write pristine;
      Alcotest.(check bool) "pristine file hits again" true
        (Table_cache.load ~dir ~key net <> None))

let test_table_cache_version_mismatch () =
  with_temp_dir (fun dir ->
      let net = Registry.circuit (Option.get (Registry.find "lion")) in
      let key = Table_cache.key net in
      (* A file from a future format version: consistent header and
         digest, but the payload type is unknowable — it must be
         rejected from the version field alone, and (unlike a corrupt
         file) left on disk: a rolled-back binary must not destroy a
         newer binary's cache. *)
      let payload = Marshal.to_string () [] in
      let buf = Buffer.create 256 in
      Buffer.add_string buf "ndetect-table\n";
      Buffer.add_string buf
        (Printf.sprintf "%d %s %s %d\n" (Table_cache.version + 1) key
           (Digest.to_hex (Digest.string payload))
           (String.length payload))
      ;
      Buffer.add_string buf payload;
      let path = Filename.concat dir (key ^ ".tbl") in
      Checkpoint.write_atomic ~path (Buffer.contents buf);
      Alcotest.(check bool) "future version is a miss" true
        (Table_cache.load ~dir ~key net = None);
      Alcotest.(check bool) "future-version file is spared deletion" true
        (Sys.file_exists path);
      (* A past version that is no longer read at all (v1) is ordinary
         corruption: miss, and reclaimed. *)
      let v1 = Buffer.contents buf in
      let v1 =
        let b = Bytes.of_string v1 in
        Bytes.set b 14 '1';
        Bytes.to_string b
      in
      Checkpoint.write_atomic ~path v1;
      Alcotest.(check bool) "unreadable past version is a miss" true
        (Table_cache.load ~dir ~key net = None);
      Alcotest.(check bool) "unreadable past version reclaimed" false
        (Sys.file_exists path))

(* One release of coexistence: a v2 (marshalled snapshot) entry still
   loads — identically, just without the mmap fast path — and the next
   store rewrites it in the current format, after which loads go
   through the map (table.mmap_hits / table.mmap_bytes advance). *)
let test_table_cache_v2_coexistence () =
  with_temp_dir (fun dir ->
      let module Telemetry = Ndetect_util.Telemetry in
      let net = Registry.circuit (Option.get (Registry.find "lion")) in
      let built = Detection_table.build net in
      let key = Table_cache.key net in
      let path = Filename.concat dir (key ^ ".tbl") in
      let version_token () =
        let raw = In_channel.with_open_bin path In_channel.input_all in
        String.sub raw 14 (String.index_from raw 14 ' ' - 14)
      in
      Table_cache.store_v2 ~dir ~key built;
      Alcotest.(check string) "written as v2" "2" (version_token ());
      let mmap_before = Telemetry.counter_value "table.mmap_hits" in
      (match Table_cache.load ~dir ~key net with
      | None -> Alcotest.fail "v2 file must still load"
      | Some restored ->
        Alcotest.(check bool) "v2 restore identical" true
          (tables_identical built restored));
      Alcotest.(check int) "v2 load does not mmap" mmap_before
        (Telemetry.counter_value "table.mmap_hits");
      Table_cache.store ~dir ~key built;
      Alcotest.(check string) "rewritten in the current format"
        (string_of_int Table_cache.version)
        (version_token ());
      let bytes_before = Telemetry.counter_value "table.mmap_bytes" in
      (match Table_cache.load ~dir ~key net with
      | None -> Alcotest.fail "rewritten file must load"
      | Some restored ->
        Alcotest.(check bool) "v3 restore identical" true
          (tables_identical built restored));
      Alcotest.(check int) "v3 load mapped the words" (mmap_before + 1)
        (Telemetry.counter_value "table.mmap_hits");
      Alcotest.(check bool) "mapped bytes accounted" true
        (Telemetry.counter_value "table.mmap_bytes" > bytes_before))

let test_table_cache_key_covers_params () =
  let net = Registry.circuit (Option.get (Registry.find "lion")) in
  let base = Table_cache.key net in
  Alcotest.(check bool) "collapse in key" true
    (base <> Table_cache.key ~collapse:false net);
  Alcotest.(check bool) "model in key" true
    (base
    <> Table_cache.key
         ~model:(Detection_table.Wired Ndetect_faults.Wired.Wired_and)
         net);
  let other = Registry.circuit (Option.get (Registry.find "mc")) in
  Alcotest.(check bool) "netlist in key" true (base <> Table_cache.key other)

let test_table_cache_warm_run_simulates_nothing () =
  with_temp_dir (fun dir ->
      let opts = { small_options with Driver.table_cache = Some dir } in
      let reference = Driver.create small_options in
      let cold = Driver.create opts in
      let expected_t2 = Driver.table2_csv reference in
      Alcotest.(check string) "cold cached run matches uncached" expected_t2
        (Driver.table2_csv cold);
      (* Warm run: every table restored from disk, zero fault
         simulations, byte-identical output. *)
      let before = Fault_sim.detection_sets_computed () in
      let warm = Driver.create opts in
      Alcotest.(check string) "warm run byte-identical" expected_t2
        (Driver.table2_csv warm);
      Alcotest.(check int) "zero fault simulations when warm" before
        (Fault_sim.detection_sets_computed ());
      Alcotest.(check int) "no failures" 0
        (List.length (Driver.failures warm)))

(* telemetry wiring: tracing/metrics never change results, warm cache
   runs trace no simulation, deterministic counters ignore --domains *)

let test_output_identical_with_telemetry () =
  with_temp_dir (fun dir ->
      let plain = Driver.create small_options in
      let expected = Driver.run_table2 plain in
      let path = Filename.concat dir "trace.jsonl" in
      let traced =
        Driver.create
          { small_options with Driver.trace = Some path; metrics = true }
      in
      let got = Driver.run_table2 traced in
      Driver.finish traced;
      Alcotest.(check string) "table2 byte-identical" expected got;
      Alcotest.(check bool) "trace written" true (Sys.file_exists path);
      (* finish is idempotent. *)
      Driver.finish traced)

let trace_begin_names path =
  In_channel.with_open_bin path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l ->
         Helpers.contains_substring l "\"type\":\"begin\"")

let test_warm_cache_trace_has_no_sim_spans () =
  with_temp_dir (fun cache ->
      with_temp_dir (fun dir ->
          (* Cold run fills the cache (untraced). *)
          let cold =
            Driver.create
              { small_options with Driver.table_cache = Some cache }
          in
          ignore (Driver.run_table2 cold);
          let path = Filename.concat dir "trace.jsonl" in
          let warm =
            Driver.create
              { small_options with
                Driver.table_cache = Some cache;
                trace = Some path }
          in
          ignore (Driver.run_table2 warm);
          Driver.finish warm;
          let begins = trace_begin_names path in
          Alcotest.(check bool) "cache lookups traced" true
            (List.exists
               (fun l ->
                 Helpers.contains_substring l "\"name\":\"table_cache.lookup\"")
               begins);
          (* The whole point of a warm cache: no table construction, no
             fault simulation — so no such spans in the trace. *)
          List.iter
            (fun forbidden ->
              Alcotest.(check bool) (forbidden ^ " absent") true
                (not
                   (List.exists
                      (fun l -> Helpers.contains_substring l forbidden)
                      begins)))
            [
              "\"name\":\"table.build\"";
              "\"name\":\"table.sim.targets\"";
              "\"name\":\"table.sim.untargeted\"";
            ]))

(* The deterministic work counters (simulation, kernel, dedup activity)
   must not depend on the domain count; sample them per supervised unit
   via --metrics and compare across --domains values. *)
let deterministic_unit_metrics driver =
  List.map
    (fun (label, delta) ->
      ( label,
        List.filter
          (fun (name, _) ->
            List.exists
              (fun prefix -> String.starts_with ~prefix name)
              [ "sim."; "worst."; "table." ])
          delta ))
    (Driver.unit_metrics driver)

let test_metrics_domain_invariant () =
  let run domains =
    let driver =
      Driver.create
        { small_options with Driver.metrics = true; domains = Some domains }
    in
    ignore (Driver.run_table2 driver);
    let m = deterministic_unit_metrics driver in
    Driver.finish driver;
    m
  in
  let reference = run 1 in
  Alcotest.(check bool) "counters moved" true
    (List.exists (fun (_, delta) -> delta <> []) reference);
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "domains %d matches domains 1" domains)
        true
        (run domains = reference))
    [ 2; 4 ]

(* supervision: containment, timeout rows, kill-and-resume *)

let test_crash_containment () =
  let clean = Driver.create small_options in
  let clean_t2 = Driver.run_table2 clean in
  let faulty =
    Driver.create
      { small_options with
        Driver.inject = Some "crash=analyze:mc,crash=analyze:lion" }
  in
  let t2 = Driver.run_table2 faulty in
  Alcotest.(check int) "both failures recorded" 2
    (List.length (Driver.failures faulty));
  Alcotest.(check bool) "crashed rows rendered" true
    (Helpers.contains_substring t2 "(crashed: injected fault: at analyze:mc)"
    && Helpers.contains_substring t2 "(crashed: injected fault")
  ;
  (* Unaffected circuits produce their normal cells. *)
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " intact") true
        (Helpers.contains_substring t2 needle
        && Helpers.contains_substring clean_t2 needle))
    [ "bbtas"; "modulo12" ];
  Driver.create small_options |> ignore
(* final create clears the global injection plan *)

let test_timeout_row () =
  let driver =
    Driver.create
      { small_options with
        Driver.inject = Some "stall=analyze:mc:30";
        timeout_per_circuit = Some 2.0 }
  in
  let t2 = Driver.run_table2 driver in
  Alcotest.(check bool) "timed out row" true
    (Helpers.contains_substring t2 "(timed out after 2s)");
  (match Driver.failures driver with
  | [ (label, failure) ] ->
    Alcotest.(check string) "label" "analyze mc" label;
    Alcotest.(check bool) "failure kind" true
      (match failure with
      | Ndetect_util.Supervise.Timed_out _ -> true
      | _ -> false)
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 failure, got %d"
                           (List.length fs)));
  Driver.create small_options |> ignore

let test_kill_and_resume_equivalence () =
  with_temp_dir (fun dir ->
      let clean = Driver.create small_options in
      let expected_t2 = Driver.table2_csv clean in
      let expected_t3 = Driver.table3_csv clean in
      (* "Kill": a run that checkpoints but crashes on one circuit. *)
      let interrupted =
        Driver.create
          { small_options with
            Driver.checkpoint_dir = Some dir;
            inject = Some "crash=analyze:mc" }
      in
      let broken_t2 = Driver.table2_csv interrupted in
      Alcotest.(check bool) "interrupted run differs" true
        (broken_t2 <> expected_t2);
      Alcotest.(check int) "one failure" 1
        (List.length (Driver.failures interrupted));
      (* Resume without the fault: only mc is recomputed, the rest is
         loaded, and the output is byte-identical to the clean run. *)
      let resumed =
        Driver.create
          { small_options with
            Driver.checkpoint_dir = Some dir;
            resume = true }
      in
      Alcotest.(check string) "table2 csv identical" expected_t2
        (Driver.table2_csv resumed);
      Alcotest.(check string) "table3 csv identical" expected_t3
        (Driver.table3_csv resumed);
      Alcotest.(check int) "no failures after resume" 0
        (List.length (Driver.failures resumed)))

(* The same kill/resume contract under parallel execution: a
   checkpointed --domains 2 run crashed mid-run, then resumed with
   --domains 2, must be byte-identical to an uninterrupted --domains 2
   run — and to the sequential one (parallel analysis is
   deterministic), so a checkpoint written by a parallel run cannot
   poison a later resume in either configuration. *)
let test_kill_and_resume_equivalence_parallel () =
  with_temp_dir (fun dir ->
      let parallel_options = { small_options with Driver.domains = Some 2 } in
      let clean = Driver.create parallel_options in
      let expected_t2 = Driver.table2_csv clean in
      let expected_t3 = Driver.table3_csv clean in
      Alcotest.(check string) "parallel clean run matches sequential"
        (Driver.table2_csv (Driver.create small_options))
        expected_t2;
      let interrupted =
        Driver.create
          { parallel_options with
            Driver.checkpoint_dir = Some dir;
            inject = Some "crash=analyze:mc" }
      in
      Alcotest.(check bool) "interrupted parallel run differs" true
        (Driver.table2_csv interrupted <> expected_t2);
      Alcotest.(check int) "one failure" 1
        (List.length (Driver.failures interrupted));
      let resumed =
        Driver.create
          { parallel_options with
            Driver.checkpoint_dir = Some dir;
            resume = true }
      in
      Alcotest.(check string) "table2 csv identical" expected_t2
        (Driver.table2_csv resumed);
      Alcotest.(check string) "table3 csv identical" expected_t3
        (Driver.table3_csv resumed);
      Alcotest.(check int) "no failures after resume" 0
        (List.length (Driver.failures resumed)))

let test_resume_skips_checkpointed_work () =
  with_temp_dir (fun dir ->
      let opts = { small_options with Driver.checkpoint_dir = Some dir } in
      let first = Driver.create opts in
      ignore (Driver.run_table2 first);
      (* A resumed driver must answer from the checkpoint without
         reanalyzing: inject crashes at every analysis site; loads make
         them unreachable. *)
      let entries = Registry.of_tier small_options.Driver.tier in
      let everything_crashes =
        String.concat ","
          (List.map (fun e -> "crash=analyze:" ^ e.Registry.name) entries)
      in
      let resumed =
        Driver.create
          { opts with Driver.resume = true;
            inject = Some everything_crashes }
      in
      Alcotest.(check string) "answered from checkpoint"
        (Driver.table2_csv first) (Driver.table2_csv resumed);
      Alcotest.(check int) "no analysis ran" 0
        (List.length (Driver.failures resumed));
      Driver.create small_options |> ignore)

let test_table1_content () =
  let driver = Driver.create small_options in
  let out = Driver.run_table1 driver in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (Helpers.contains_substring out needle))
    [ "T((9,0,10,1)) = {6 7}"; "nmin((9,0,10,1)) = 3"; "9/1"; "11/0" ]

let test_table4_content () =
  let driver = Driver.create small_options in
  let out = Driver.run_table4 driver in
  Alcotest.(check bool) "has g6 line" true
    (Helpers.contains_substring out "T(g6) = {12}")

let test_tables_2_3_shape () =
  let driver = Driver.create small_options in
  let t2 = Driver.run_table2 driver in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " in table 2") true
        (Helpers.contains_substring t2 name))
    [ "lion"; "mc"; "bbtas"; "modulo12" ];
  let t3 = Driver.run_table3 driver in
  Alcotest.(check bool) "table 3 rendered" true
    (Helpers.contains_substring t3 "n>=100")

let test_figure2_runs () =
  let driver = Driver.create small_options in
  let out = Driver.run_figure2 driver in
  Alcotest.(check bool) "names a circuit" true
    (Helpers.contains_substring out "circuit:")

let test_caching () =
  let driver = Driver.create small_options in
  let entry = Option.get (Registry.find "lion") in
  let a1 = Driver.analysis_of driver entry in
  let a2 = Driver.analysis_of driver entry in
  Alcotest.(check bool) "same analysis object" true (a1 == a2)

let () =
  Alcotest.run "harness"
    [
      ( "args",
        [
          Alcotest.test_case "defaults" `Quick test_parse_args_defaults;
          Alcotest.test_case "full" `Quick test_parse_args_full;
          Alcotest.test_case "csv flag" `Quick test_parse_args_csv;
          Alcotest.test_case "errors" `Quick test_parse_args_errors;
          Alcotest.test_case "friendly messages" `Quick
            test_parse_args_friendly_messages;
          Alcotest.test_case "result form" `Quick test_parse_args_result;
          Alcotest.test_case "contradictory flags rejected" `Quick
            test_parse_args_rejects_contradictions;
          Alcotest.test_case "telemetry flags" `Quick
            test_parse_args_telemetry_flags;
          Alcotest.test_case "options make" `Quick test_options_make;
          Alcotest.test_case "supervision flags" `Quick
            test_parse_args_supervision_flags;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "stamp mismatch" `Quick
            test_checkpoint_stamp_mismatch;
          Alcotest.test_case "corruption tolerated" `Quick
            test_checkpoint_corruption;
          Alcotest.test_case "atomic writes" `Quick test_write_atomic;
        ] );
      ( "table-cache",
        [
          Alcotest.test_case "roundtrip bit-identical" `Quick
            test_table_cache_roundtrip;
          Alcotest.test_case "corruption tolerated" `Quick
            test_table_cache_corruption;
          Alcotest.test_case "damage sweep: truncations and bit flips" `Quick
            test_table_cache_damage_sweep;
          Alcotest.test_case "version mismatch tolerated" `Quick
            test_table_cache_version_mismatch;
          Alcotest.test_case "v2 coexistence: loads, rewritten as v3" `Quick
            test_table_cache_v2_coexistence;
          Alcotest.test_case "key covers parameters" `Quick
            test_table_cache_key_covers_params;
          Alcotest.test_case "warm run simulates nothing" `Quick
            test_table_cache_warm_run_simulates_nothing;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "output identical with telemetry" `Quick
            test_output_identical_with_telemetry;
          Alcotest.test_case "warm cache trace has no sim spans" `Quick
            test_warm_cache_trace_has_no_sim_spans;
          Alcotest.test_case "metrics ignore domain count" `Quick
            test_metrics_domain_invariant;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "crash containment" `Quick
            test_crash_containment;
          Alcotest.test_case "timeout row" `Quick test_timeout_row;
          Alcotest.test_case "kill and resume" `Quick
            test_kill_and_resume_equivalence;
          Alcotest.test_case "kill and resume (domains 2)" `Quick
            test_kill_and_resume_equivalence_parallel;
          Alcotest.test_case "resume skips work" `Quick
            test_resume_skips_checkpointed_work;
        ] );
      ( "driver",
        [
          Alcotest.test_case "table 1 content" `Quick test_table1_content;
          Alcotest.test_case "table 4 content" `Quick test_table4_content;
          Alcotest.test_case "tables 2/3" `Quick test_tables_2_3_shape;
          Alcotest.test_case "figure 2" `Quick test_figure2_runs;
          Alcotest.test_case "analysis caching" `Quick test_caching;
        ] );
    ]
