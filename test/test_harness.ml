(* Tests for the reproduction driver shared by bin/reproduce and
   bench/main. *)

module Driver = Ndetect_harness.Driver
module Registry = Ndetect_suite.Registry

let small_options =
  {
    Driver.tier = Registry.Small;
    k = 20;
    k2 = 10;
    seed = 1;
    only = "all";
    quiet = true;
    csv_dir = None;
  }

let test_parse_args_defaults () =
  let opts = Driver.parse_args [] in
  Alcotest.(check int) "k" 1000 opts.Driver.k;
  Alcotest.(check int) "k2" 200 opts.Driver.k2;
  Alcotest.(check string) "only" "all" opts.Driver.only;
  Alcotest.(check bool) "not quiet" false opts.Driver.quiet

let test_parse_args_full () =
  let opts =
    Driver.parse_args
      [ "--tier"; "large"; "--k"; "42"; "--k2"; "7"; "--seed"; "9";
        "--only"; "Table5"; "--quiet" ]
  in
  Alcotest.(check bool) "tier" true (opts.Driver.tier = Registry.Large);
  Alcotest.(check int) "k" 42 opts.Driver.k;
  Alcotest.(check int) "k2" 7 opts.Driver.k2;
  Alcotest.(check int) "seed" 9 opts.Driver.seed;
  Alcotest.(check string) "only lowercased" "table5" opts.Driver.only;
  Alcotest.(check bool) "quiet" true opts.Driver.quiet

let test_parse_args_csv () =
  let opts = Driver.parse_args [ "--csv"; "out/dir" ] in
  Alcotest.(check (option string)) "csv dir" (Some "out/dir")
    opts.Driver.csv_dir;
  Alcotest.(check (option string)) "default none" None
    (Driver.parse_args []).Driver.csv_dir

let test_parse_args_errors () =
  Alcotest.(check bool) "bad tier" true
    (try
       ignore (Driver.parse_args [ "--tier"; "gigantic" ]);
       false
     with Failure _ -> true);
  Alcotest.(check bool) "unknown flag" true
    (try
       ignore (Driver.parse_args [ "--frobnicate" ]);
       false
     with Failure _ -> true)

let test_table1_content () =
  let driver = Driver.create small_options in
  let out = Driver.run_table1 driver in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (Helpers.contains_substring out needle))
    [ "T((9,0,10,1)) = {6 7}"; "nmin((9,0,10,1)) = 3"; "9/1"; "11/0" ]

let test_table4_content () =
  let driver = Driver.create small_options in
  let out = Driver.run_table4 driver in
  Alcotest.(check bool) "has g6 line" true
    (Helpers.contains_substring out "T(g6) = {12}")

let test_tables_2_3_shape () =
  let driver = Driver.create small_options in
  let t2 = Driver.run_table2 driver in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " in table 2") true
        (Helpers.contains_substring t2 name))
    [ "lion"; "mc"; "bbtas"; "modulo12" ];
  let t3 = Driver.run_table3 driver in
  Alcotest.(check bool) "table 3 rendered" true
    (Helpers.contains_substring t3 "n>=100")

let test_figure2_runs () =
  let driver = Driver.create small_options in
  let out = Driver.run_figure2 driver in
  Alcotest.(check bool) "names a circuit" true
    (Helpers.contains_substring out "circuit:")

let test_caching () =
  let driver = Driver.create small_options in
  let entry = Option.get (Registry.find "lion") in
  let a1 = Driver.analysis_of driver entry in
  let a2 = Driver.analysis_of driver entry in
  Alcotest.(check bool) "same analysis object" true (a1 == a2)

let () =
  Alcotest.run "harness"
    [
      ( "args",
        [
          Alcotest.test_case "defaults" `Quick test_parse_args_defaults;
          Alcotest.test_case "full" `Quick test_parse_args_full;
          Alcotest.test_case "csv flag" `Quick test_parse_args_csv;
          Alcotest.test_case "errors" `Quick test_parse_args_errors;
        ] );
      ( "driver",
        [
          Alcotest.test_case "table 1 content" `Quick test_table1_content;
          Alcotest.test_case "table 4 content" `Quick test_table4_content;
          Alcotest.test_case "tables 2/3" `Quick test_tables_2_3_shape;
          Alcotest.test_case "figure 2" `Quick test_figure2_runs;
          Alcotest.test_case "analysis caching" `Quick test_caching;
        ] );
    ]
