(* End-to-end integration tests: the complete pipeline of the paper, from
   circuit to analysis results, on the worked example and on small suite
   benchmarks. *)

module Analysis = Ndetect_core.Analysis
module Detection_table = Ndetect_core.Detection_table
module Worst_case = Ndetect_core.Worst_case
module Procedure1 = Ndetect_core.Procedure1
module Definition2 = Ndetect_core.Definition2
module Average_case = Ndetect_core.Average_case
module Bitvec = Ndetect_util.Bitvec
module Registry = Ndetect_suite.Registry
module Example = Ndetect_suite.Example

let test_example_full_worst_case () =
  (* Every nmin value of the example circuit, computed end to end. The
     paper fixes nmin(g0) = 3 and nmin(g6) = 4; the rest follow from the
     verified detection sets. *)
  let a = Analysis.analyze ~name:"example" (Example.circuit ()) in
  let expected =
    [ ("(9,0,10,1)", 3); ("(10,0,9,1)", 3); ("(9,1,10,0)", 3);
      ("(10,1,9,0)", 3); ("(9,0,11,1)", 1); ("(11,0,9,1)", 4);
      ("(9,1,11,0)", 4); ("(11,1,9,0)", 1); ("(10,0,11,1)", 1);
      ("(11,1,10,0)", 1) ]
  in
  List.iteri
    (fun gj (label, nmin) ->
      Alcotest.(check string) "label" label
        (Detection_table.untargeted_label a.Analysis.table gj);
      Alcotest.(check int) ("nmin " ^ label) nmin
        (Worst_case.nmin a.Analysis.worst gj))
    expected;
  (* Worst-case coverage curve: 40% at n=1 (4 of 10), 40% at 2, 80% at 3,
     100% at 4. *)
  List.iter
    (fun (n, pct) ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "coverage at %d" n)
        pct
        (Worst_case.percent_below a.Analysis.worst n))
    [ (1, 40.0); (2, 40.0); (3, 80.0); (4, 100.0) ]

let test_example_average_case_consistency () =
  (* p(n, g) estimates respect the worst-case guarantee: with K sets,
     faults with nmin <= n have p = 1 exactly, and g6 (|T| = 1) has
     p(1, g6) well below 1. *)
  let a = Analysis.analyze ~name:"example" (Example.circuit ()) in
  let config =
    { Procedure1.seed = 123; set_count = 400; nmax = 4;
      mode = Procedure1.Definition1 }
  in
  let outcome = Procedure1.run a.Analysis.table config in
  for gj = 0 to Detection_table.untargeted_count a.Analysis.table - 1 do
    let nmin = Worst_case.nmin a.Analysis.worst gj in
    for n = 1 to 4 do
      let p = Procedure1.probability outcome ~n ~gj in
      if n >= nmin then
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "guaranteed at n=%d gj=%d" n gj)
          1.0 p
      else
        Alcotest.(check bool) "probability in range" true (p >= 0.0 && p <= 1.0)
    done
  done;
  (* g6: T = {12}; under a 1-detection test set the probability of picking
     vector 12 is far from 0 and far from 1. *)
  let victim, vv, aggressor, av = Example.g6 in
  let g6 =
    Option.get
      (Detection_table.find_untargeted a.Analysis.table ~victim
         ~victim_value:vv ~aggressor ~aggressor_value:av)
  in
  let p1 = Procedure1.probability outcome ~n:1 ~gj:g6 in
  Alcotest.(check bool) "0 < p(1,g6) < 1" true (p1 > 0.02 && p1 < 0.98)

let test_definition2_improves_example () =
  (* Section 4 of the paper: Definition 2 increases (or at worst keeps)
     detection probabilities. Check the aggregate over the example's
     hardest faults. *)
  let a = Analysis.analyze ~name:"example" (Example.circuit ()) in
  let hard = Analysis.hard_faults a ~nmax:2 in
  Alcotest.(check bool) "example has faults with nmin > 2" true
    (Array.length hard > 0);
  let run mode =
    Procedure1.run ~report_faults:hard a.Analysis.table
      { Procedure1.seed = 5; set_count = 300; nmax = 2; mode }
  in
  let def1 = run Procedure1.Definition1 in
  let def2 = run Procedure1.Definition2 in
  let total outcome =
    Array.fold_left
      (fun acc gj -> acc + Procedure1.detected_count outcome ~n:2 ~gj)
      0 hard
  in
  Alcotest.(check bool) "Def2 detects at least as much on aggregate" true
    (total def2 >= total def1)

let run_small_benchmark name =
  let entry = Option.get (Registry.find name) in
  let a = Analysis.analyze ~name (Registry.circuit entry) in
  let summary = a.Analysis.summary in
  Alcotest.(check bool) (name ^ " has bridging faults") true
    (summary.Analysis.untargeted_faults > 0);
  Alcotest.(check bool) (name ^ " has target faults") true
    (summary.Analysis.target_faults > 0);
  (* Percentages are monotone in n and end at 100 for these small
     machines. *)
  let pcts = List.map snd summary.Analysis.percent_below in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) (name ^ " monotone coverage") true (monotone pcts);
  a

let test_benchmark_lion () =
  let a = run_small_benchmark "lion" in
  Alcotest.(check bool) "lion saturates by n=10" true
    (match a.Analysis.summary.Analysis.max_finite_nmin with
    | Some m -> m <= 10
    | None -> false)

let test_benchmark_mc () = ignore (run_small_benchmark "mc")
let test_benchmark_dk27 () = ignore (run_small_benchmark "dk27")
let test_benchmark_train4 () = ignore (run_small_benchmark "train4")

let test_procedure1_def2_chain_on_benchmark () =
  (* On a real benchmark, Def2 chains never exceed Def1 counts and only
     contain detecting vectors. *)
  let entry = Option.get (Registry.find "train4") in
  let table = Detection_table.build (Registry.circuit entry) in
  let outcome =
    Procedure1.run table
      { Procedure1.seed = 2; set_count = 12; nmax = 3;
        mode = Procedure1.Definition2 }
  in
  for k = 0 to 11 do
    for fi = 0 to Detection_table.target_count table - 1 do
      let chain = Procedure1.chain_def2 outcome ~k ~fi in
      let def1 = Procedure1.detection_count_def1 outcome ~k ~fi in
      Alcotest.(check bool) "chain <= def1 count" true
        (List.length chain <= def1);
      List.iter
        (fun v ->
          Alcotest.(check bool) "chain vectors detect" true
            (Bitvec.get (Detection_table.target_set table fi) v))
        chain
    done
  done

let test_def2_chain_pairwise_different () =
  let entry = Option.get (Registry.find "train4") in
  let table = Detection_table.build (Registry.circuit entry) in
  let def2 = Definition2.create table in
  let outcome =
    Procedure1.run table
      { Procedure1.seed = 21; set_count = 6; nmax = 3;
        mode = Procedure1.Definition2 }
  in
  for k = 0 to 5 do
    for fi = 0 to Detection_table.target_count table - 1 do
      let chain = Procedure1.chain_def2 outcome ~k ~fi in
      let rec pairwise = function
        | [] -> true
        | v :: rest ->
          List.for_all (fun w -> Definition2.different def2 ~fi v w) rest
          && pairwise rest
      in
      Alcotest.(check bool) "pairwise different" true (pairwise chain)
    done
  done

let test_average_summaries_on_benchmark () =
  (* Build a Table-5-style row for a small benchmark with forced low
     nmax so some faults are "hard". *)
  let entry = Option.get (Registry.find "bbtas") in
  let a = Analysis.analyze ~name:"bbtas" (Registry.circuit entry) in
  let nmax = 1 in
  let hard = Analysis.hard_faults a ~nmax in
  if Array.length hard > 0 then begin
    let outcome =
      Procedure1.run ~report_faults:hard a.Analysis.table
        { Procedure1.seed = 4; set_count = 100; nmax;
          mode = Procedure1.Definition1 }
    in
    let row = Average_case.summarize outcome ~n:nmax in
    Alcotest.(check int) "row covers hard faults" (Array.length hard)
      row.Average_case.fault_count;
    let last = row.Average_case.at_least.(10) in
    Alcotest.(check int) "p >= 0 covers all" (Array.length hard) last;
    (* Cumulative monotone. *)
    for i = 0 to 9 do
      Alcotest.(check bool) "cumulative" true
        (row.Average_case.at_least.(i) <= row.Average_case.at_least.(i + 1))
    done
  end

let () =
  Alcotest.run "paper"
    [
      ( "example",
        [
          Alcotest.test_case "full worst-case analysis" `Quick
            test_example_full_worst_case;
          Alcotest.test_case "average-case consistency" `Quick
            test_example_average_case_consistency;
          Alcotest.test_case "Definition 2 improves detection" `Quick
            test_definition2_improves_example;
        ] );
      ( "benchmarks",
        [
          Alcotest.test_case "lion" `Quick test_benchmark_lion;
          Alcotest.test_case "mc" `Quick test_benchmark_mc;
          Alcotest.test_case "dk27" `Quick test_benchmark_dk27;
          Alcotest.test_case "train4" `Quick test_benchmark_train4;
          Alcotest.test_case "Def2 chains on benchmark" `Quick
            test_procedure1_def2_chain_on_benchmark;
          Alcotest.test_case "Def2 chains pairwise different" `Quick
            test_def2_chain_pairwise_different;
          Alcotest.test_case "average summaries" `Quick
            test_average_summaries_on_benchmark;
        ] );
    ]
