module Registry = Ndetect_suite.Registry
module Classics = Ndetect_suite.Classics
module Fsm_gen = Ndetect_suite.Fsm_gen
module Kiss2 = Ndetect_netparse.Kiss2
module Netlist = Ndetect_circuit.Netlist
module Cube = Ndetect_synth.Cube
module Ternary = Ndetect_logic.Ternary

let test_registry_complete () =
  (* All 35 circuits of the paper's Tables 2/3 are present. *)
  let expected =
    [ "c17"; "lion"; "dk27"; "ex5"; "train4"; "bbtas"; "dk15"; "dk512"; "dk14";
      "dk17"; "firstex"; "lion9"; "mc"; "dk16"; "modulo12"; "s8"; "tav";
      "donfile"; "ex7"; "train11"; "beecount"; "ex2"; "ex3"; "ex6";
      "mark1"; "bbara"; "ex4"; "keyb"; "opus"; "bbsse"; "cse"; "dvram";
      "fetch"; "log"; "rie"; "s1a" ]
  in
  Alcotest.(check int) "36 circuits" 36 (List.length (Registry.names ()));
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true
        (Registry.find name <> None))
    expected

let test_tiers_nested () =
  let small = List.length (Registry.of_tier Registry.Small) in
  let medium = List.length (Registry.of_tier Registry.Medium) in
  let large = List.length (Registry.of_tier Registry.Large) in
  Alcotest.(check bool) "small <= medium <= large" true
    (small <= medium && medium <= large);
  Alcotest.(check int) "large covers all" 36 large

let test_classics_parse () =
  List.iter
    (fun (name, text) ->
      let fsm = Kiss2.parse text in
      Alcotest.(check bool) (name ^ " has transitions") true
        (Array.length fsm.Kiss2.transitions > 0))
    Classics.all

let check_fsm_deterministic_complete fsm =
  (* For every state, the input cubes must partition the input space. *)
  let transitions_by_state = Hashtbl.create 16 in
  Array.iter
    (fun (tr : Kiss2.transition) ->
      Hashtbl.replace transitions_by_state tr.Kiss2.current
        (tr
        :: Option.value
             (Hashtbl.find_opt transitions_by_state tr.Kiss2.current)
             ~default:[]))
    fsm.Kiss2.transitions;
  Array.iter
    (fun state ->
      let rows =
        Option.value (Hashtbl.find_opt transitions_by_state state) ~default:[]
      in
      Alcotest.(check bool) (state ^ " has rows") true (rows <> []);
      let bits = fsm.Kiss2.input_bits in
      for v = 0 to (1 lsl bits) - 1 do
        let point =
          Array.init bits (fun i -> (v lsr (bits - 1 - i)) land 1 = 1)
        in
        let matching =
          List.filter (fun tr -> Cube.eval tr.Kiss2.input point) rows
        in
        Alcotest.(check int)
          (Printf.sprintf "%s input %d matches exactly once" state v)
          1 (List.length matching)
      done)
    fsm.Kiss2.state_names

let test_classics_deterministic_complete () =
  List.iter
    (fun (_, text) -> check_fsm_deterministic_complete (Kiss2.parse text))
    Classics.all

let test_generator_deterministic_complete () =
  List.iter
    (fun seed ->
      let fsm =
        Fsm_gen.generate ~seed ~inputs:3 ~outputs:2 ~states:5 ~products:17
      in
      check_fsm_deterministic_complete fsm)
    [ 1; 2; 3; 42 ]

let test_generator_reproducible () =
  let a = Fsm_gen.generate ~seed:9 ~inputs:2 ~outputs:2 ~states:4 ~products:10 in
  let b = Fsm_gen.generate ~seed:9 ~inputs:2 ~outputs:2 ~states:4 ~products:10 in
  Alcotest.(check string) "same machine" (Kiss2.print a) (Kiss2.print b)

let test_generator_dimensions () =
  let fsm =
    Fsm_gen.generate ~seed:1 ~inputs:3 ~outputs:4 ~states:6 ~products:20
  in
  Alcotest.(check int) "inputs" 3 fsm.Kiss2.input_bits;
  Alcotest.(check int) "outputs" 4 fsm.Kiss2.output_bits;
  Alcotest.(check int) "states" 6 (Array.length fsm.Kiss2.state_names);
  Alcotest.(check bool) "products >= states" true
    (Array.length fsm.Kiss2.transitions >= 6)

let test_generator_connected () =
  (* Every state reachable from state 0 through the transition graph. *)
  let fsm =
    Fsm_gen.generate ~seed:77 ~inputs:2 ~outputs:1 ~states:9 ~products:25
  in
  let reached = Hashtbl.create 16 in
  let rec visit state =
    if not (Hashtbl.mem reached state) then begin
      Hashtbl.replace reached state ();
      Array.iter
        (fun (tr : Kiss2.transition) ->
          if String.equal tr.Kiss2.current state then visit tr.Kiss2.next)
        fsm.Kiss2.transitions
    end
  in
  visit fsm.Kiss2.reset_state;
  Array.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " reachable") true (Hashtbl.mem reached s))
    fsm.Kiss2.state_names

let test_seed_of_name_stable () =
  Alcotest.(check int) "stable hash" (Fsm_gen.seed_of_name "keyb")
    (Fsm_gen.seed_of_name "keyb");
  Alcotest.(check bool) "names differ" true
    (Fsm_gen.seed_of_name "keyb" <> Fsm_gen.seed_of_name "cse")

let test_small_circuits_synthesize () =
  List.iter
    (fun entry ->
      let net = Registry.circuit entry in
      let stats = Netlist.stats net in
      Alcotest.(check bool)
        (entry.Registry.name ^ " has gates")
        true
        (stats.Netlist.gates_n > 0);
      Alcotest.(check bool)
        (entry.Registry.name ^ " universe tractable")
        true
        (Netlist.universe_size net <= 1 lsl 12);
      Alcotest.(check int)
        (entry.Registry.name ^ " pi_count consistent")
        (Registry.pi_count entry) (Netlist.input_count net))
    (Registry.of_tier Registry.Small)

let test_circuit_reproducible () =
  let entry = Option.get (Registry.find "dk27") in
  let a = Registry.circuit entry and b = Registry.circuit entry in
  Alcotest.(check int) "same node count" (Netlist.node_count a)
    (Netlist.node_count b);
  for v = 0 to Netlist.universe_size a - 1 do
    Alcotest.(check (array bool)) "same function"
      (Ndetect_sim.Eval.outputs_of_vector a v)
      (Ndetect_sim.Eval.outputs_of_vector b v)
  done

let test_example_g_descriptors () =
  let v1, b1, v2, b2 = Ndetect_suite.Example.g0 in
  Alcotest.(check string) "g0 victim" "9" v1;
  Alcotest.(check bool) "g0 victim value" false b1;
  Alcotest.(check string) "g0 aggressor" "10" v2;
  Alcotest.(check bool) "g0 aggressor value" true b2;
  ignore Ternary.X

let () =
  Alcotest.run "suite"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "tiers nested" `Quick test_tiers_nested;
          Alcotest.test_case "small circuits synthesize" `Quick
            test_small_circuits_synthesize;
          Alcotest.test_case "reproducible" `Quick test_circuit_reproducible;
        ] );
      ( "classics",
        [
          Alcotest.test_case "parse" `Quick test_classics_parse;
          Alcotest.test_case "deterministic and complete" `Quick
            test_classics_deterministic_complete;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic and complete" `Quick
            test_generator_deterministic_complete;
          Alcotest.test_case "reproducible" `Quick test_generator_reproducible;
          Alcotest.test_case "dimensions" `Quick test_generator_dimensions;
          Alcotest.test_case "connected" `Quick test_generator_connected;
          Alcotest.test_case "stable name hash" `Quick
            test_seed_of_name_stable;
        ] );
      ( "example",
        [ Alcotest.test_case "bridge descriptors" `Quick
            test_example_g_descriptors ] );
    ]
