(* Tests for the supervision layer: cancellation tokens, the error
   taxonomy, supervised execution and deterministic fault injection. *)

module Cancel = Ndetect_util.Cancel
module Uerror = Ndetect_util.Error
module Supervise = Ndetect_util.Supervise

let kind =
  Alcotest.testable
    (fun ppf k -> Format.pp_print_string ppf (Uerror.kind_to_string k))
    ( = )

(* cancel *)

let test_cancel_flag () =
  let t = Cancel.create () in
  Cancel.poll t;
  Alcotest.(check bool) "not cancelled" false (Cancel.cancelled t);
  Cancel.cancel t;
  Alcotest.(check bool) "cancelled" true (Cancel.cancelled t);
  Alcotest.check_raises "poll raises" Cancel.Cancelled (fun () ->
      Cancel.poll t)

let test_cancel_none_inert () =
  Cancel.cancel Cancel.none;
  Alcotest.(check bool) "none never cancels" false
    (Cancel.cancelled Cancel.none);
  Cancel.poll Cancel.none

let test_cancel_deadline () =
  let t = Cancel.create ~deadline_in:0.02 () in
  Cancel.check_deadline t;
  Unix.sleepf 0.03;
  Alcotest.check_raises "deadline expired" Cancel.Cancelled (fun () ->
      Cancel.check_deadline t);
  (* Once expired, the flag stays set: plain polls raise too. *)
  Alcotest.check_raises "flag sticky" Cancel.Cancelled (fun () ->
      Cancel.poll t)

let test_cancel_bad_deadline () =
  Alcotest.(check bool) "non-positive rejected" true
    (try
       ignore (Cancel.create ~deadline_in:0.0 ());
       false
     with Invalid_argument _ -> true)

(* error taxonomy *)

let test_error_classification () =
  let k e = (Uerror.of_exn e).Uerror.kind in
  Alcotest.check kind "Sys_error" Uerror.Io (k (Sys_error "x"));
  Alcotest.check kind "Unix_error" Uerror.Io
    (k (Unix.Unix_error (Unix.ENOENT, "open", "x")));
  Alcotest.check kind "Failure" Uerror.Invalid_input (k (Failure "x"));
  Alcotest.check kind "Invalid_argument" Uerror.Invalid_input
    (k (Invalid_argument "x"));
  Alcotest.check kind "Cancelled" Uerror.Timeout (k Cancel.Cancelled);
  Alcotest.check kind "Not_found" Uerror.Internal (k Not_found);
  Alcotest.check kind "Injected" Uerror.Injected
    (k (Supervise.Injected "site"))

let test_error_retryable () =
  Alcotest.(check bool) "Io retryable" true
    (Uerror.retryable (Uerror.of_exn (Sys_error "x")));
  Alcotest.(check bool) "Failure not retryable" false
    (Uerror.retryable (Uerror.of_exn (Failure "x")))

let test_error_context () =
  let e =
    Uerror.of_exn (Failure "boom")
    |> Uerror.with_context "inner" |> Uerror.with_context "outer"
  in
  let s = Uerror.to_string e in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (Helpers.contains_substring s needle))
    [ "outer"; "inner"; "boom" ]

(* supervised execution *)

let test_run_ok () =
  Alcotest.(check bool) "ok" true (Supervise.run (fun _ -> 42) = Ok 42)

let test_run_crash () =
  match Supervise.run (fun _ -> failwith "boom") with
  | Error (Supervise.Crashed e) ->
    Alcotest.check kind "kind" Uerror.Invalid_input e.Uerror.kind;
    Alcotest.(check bool) "describe" true
      (Helpers.contains_substring
         (Supervise.describe (Supervise.Crashed e))
         "crashed")
  | _ -> Alcotest.fail "expected Crashed"

let test_run_timeout () =
  Supervise.set_injection [ ("slow", Supervise.Inject_stall 10.0) ];
  Fun.protect
    ~finally:(fun () -> Supervise.set_injection [])
    (fun () ->
      match
        Supervise.run ~deadline:0.05 (fun cancel ->
            Supervise.inject ~cancel "slow";
            0)
      with
      | Error (Supervise.Timed_out { budget; _ }) ->
        Alcotest.(check bool) "budget recorded" true (budget = 0.05)
      | _ -> Alcotest.fail "expected Timed_out")

let test_run_retries_io () =
  let attempts = ref 0 in
  let result =
    Supervise.run ~retries:2 ~backoff:0.001 (fun _ ->
        incr attempts;
        if !attempts < 3 then raise (Sys_error "flaky") else "ok")
  in
  Alcotest.(check bool) "eventually ok" true (result = Ok "ok");
  Alcotest.(check int) "three attempts" 3 !attempts

let test_run_no_retry_for_crash () =
  let attempts = ref 0 in
  let result =
    Supervise.run ~retries:5 ~backoff:0.001 (fun _ ->
        incr attempts;
        failwith "deterministic")
  in
  Alcotest.(check bool) "crashed" true
    (match result with Error (Supervise.Crashed _) -> true | _ -> false);
  Alcotest.(check int) "single attempt" 1 !attempts

let test_run_retries_exhausted () =
  let attempts = ref 0 in
  let result =
    Supervise.run ~retries:2 ~backoff:0.001 (fun _ ->
        incr attempts;
        raise (Sys_error "always"))
  in
  Alcotest.(check bool) "still failed" true
    (match result with Error (Supervise.Crashed _) -> true | _ -> false);
  Alcotest.(check int) "three attempts" 3 !attempts

(* fault injection *)

let test_inject_crash_site () =
  Supervise.set_injection [ ("analyze:mc", Supervise.Inject_crash) ];
  Fun.protect
    ~finally:(fun () -> Supervise.set_injection [])
    (fun () ->
      (match
         Supervise.run (fun cancel ->
             Supervise.inject ~cancel "analyze:mc";
             1)
       with
      | Error (Supervise.Crashed e) ->
        Alcotest.check kind "injected kind" Uerror.Injected e.Uerror.kind
      | _ -> Alcotest.fail "expected injected crash");
      (* Other sites are untouched. *)
      Alcotest.(check bool) "other site ok" true
        (Supervise.run (fun cancel ->
             Supervise.inject ~cancel "analyze:lion";
             2)
        = Ok 2))

let test_inject_disabled_noop () =
  Supervise.set_injection [];
  Supervise.inject "anything"

let test_parse_injection_spec () =
  (match Supervise.parse_injection_spec "crash=analyze:mc" with
  | Ok [ ("analyze:mc", Supervise.Inject_crash) ] -> ()
  | _ -> Alcotest.fail "single crash item");
  (match Supervise.parse_injection_spec "stall=analyze:dk27:2.5" with
  | Ok [ ("analyze:dk27", Supervise.Inject_stall s) ] ->
    Alcotest.(check bool) "seconds" true (s = 2.5)
  | _ -> Alcotest.fail "single stall item");
  (match Supervise.parse_injection_spec "crash=a,stall=b:1" with
  | Ok [ ("a", Supervise.Inject_crash); ("b", Supervise.Inject_stall _) ] ->
    ()
  | _ -> Alcotest.fail "two items");
  List.iter
    (fun bad ->
      Alcotest.(check bool) (bad ^ " rejected") true
        (Result.is_error (Supervise.parse_injection_spec bad)))
    [ "bogus"; "crash="; "stall=x"; "stall=x:notanumber"; "stall=x:-1" ]

let test_parse_io_spec () =
  (match Supervise.parse_injection_spec "io=ledger:result:enospc:2" with
  | Ok [ ("ledger:result", Supervise.Inject_io { error; remaining }) ] ->
    Alcotest.(check bool) "error" true (error = Unix.ENOSPC);
    Alcotest.(check int) "count" 2 remaining
  | _ -> Alcotest.fail "io item with count");
  (* COUNT defaults to 1; the site may itself contain ':'. *)
  (match Supervise.parse_injection_spec "io=unit:avg-mc-0-16:eacces" with
  | Ok [ ("unit:avg-mc-0-16", Supervise.Inject_io { error; remaining }) ] ->
    Alcotest.(check bool) "error" true (error = Unix.EACCES);
    Alcotest.(check int) "default count" 1 remaining
  | _ -> Alcotest.fail "io item with colon in site");
  (match Supervise.parse_injection_spec "io=checkpoint:store:eio,crash=a" with
  | Ok
      [
        ("checkpoint:store", Supervise.Inject_io _); ("a", Supervise.Inject_crash);
      ] ->
    ()
  | _ -> Alcotest.fail "io mixes with other actions");
  List.iter
    (fun bad ->
      Alcotest.(check bool) (bad ^ " rejected") true
        (Result.is_error (Supervise.parse_injection_spec bad)))
    [ "io="; "io=site"; "io=site:ebadname"; "io=site:enospc:0"; "io=:enospc" ]

(* Inject_io raises a Unix_error — classified Io, hence retryable — for
   its next [remaining] hits, then disarms: exactly the shape of a
   transient filesystem fault, so a supervised retry must recover. *)
let test_inject_io_fires_then_disarms () =
  Supervise.set_injection
    [ ("ledger:result", Supervise.Inject_io { error = Unix.ENOSPC; remaining = 2 }) ];
  Fun.protect
    ~finally:(fun () -> Supervise.set_injection [])
    (fun () ->
      let hit () =
        try
          Supervise.inject "ledger:result";
          None
        with Unix.Unix_error (e, _, site) -> Some (e, site)
      in
      (match hit () with
      | Some (Unix.ENOSPC, "ledger:result") -> ()
      | _ -> Alcotest.fail "first hit should raise ENOSPC");
      (match hit () with
      | Some (Unix.ENOSPC, _) -> ()
      | _ -> Alcotest.fail "second hit should raise ENOSPC");
      Alcotest.(check bool) "disarmed after count" true (hit () = None);
      (* The raised error sits in the retryable Io class. *)
      let err =
        Uerror.of_exn (Unix.Unix_error (Unix.ENOSPC, "inject", "ledger:result"))
      in
      Alcotest.check kind "classified Io" Uerror.Io err.Uerror.kind;
      Alcotest.(check bool) "retryable" true (Uerror.retryable err))

let test_inject_io_recovered_by_retry () =
  Supervise.set_injection
    [ ("checkpoint:store", Supervise.Inject_io { error = Unix.EIO; remaining = 1 }) ];
  Fun.protect
    ~finally:(fun () -> Supervise.set_injection [])
    (fun () ->
      let attempts = ref 0 in
      let result =
        Supervise.run ~retries:2 ~backoff:0.001 (fun cancel ->
            incr attempts;
            Supervise.inject ~cancel "checkpoint:store";
            "stored")
      in
      Alcotest.(check bool) "recovered" true (result = Ok "stored");
      Alcotest.(check int) "one retry" 2 !attempts;
      (* Without retries the same fault is a Crashed Io failure. *)
      Supervise.set_injection
        [ ("checkpoint:store", Supervise.Inject_io { error = Unix.EIO; remaining = 1 }) ];
      match Supervise.run (fun cancel -> Supervise.inject ~cancel "checkpoint:store") with
      | Error (Supervise.Crashed e) ->
        Alcotest.check kind "Io failure" Uerror.Io e.Uerror.kind
      | _ -> Alcotest.fail "expected Crashed")

(* Runs last: the termination flag is process-wide and sticky by
   design (a SIGTERM'd process never un-terminates), so this test
   would poison any supervised run scheduled after it. *)
let test_request_termination () =
  Alcotest.(check int) "exit code" 4 Supervise.sigterm_exit_code;
  Supervise.request_termination ();
  Alcotest.(check bool) "flag set" true (Supervise.terminating ());
  match Supervise.run (fun _ -> 1) with
  | Error (Supervise.Skipped reason) ->
    Alcotest.(check bool) "skip names SIGTERM" true
      (Helpers.contains_substring reason "SIGTERM")
  | _ -> Alcotest.fail "expected Skipped while terminating"

let () =
  Alcotest.run "supervise"
    [
      ( "cancel",
        [
          Alcotest.test_case "flag" `Quick test_cancel_flag;
          Alcotest.test_case "none inert" `Quick test_cancel_none_inert;
          Alcotest.test_case "deadline" `Quick test_cancel_deadline;
          Alcotest.test_case "bad deadline" `Quick test_cancel_bad_deadline;
        ] );
      ( "error",
        [
          Alcotest.test_case "classification" `Quick
            test_error_classification;
          Alcotest.test_case "retryable" `Quick test_error_retryable;
          Alcotest.test_case "context" `Quick test_error_context;
        ] );
      ( "run",
        [
          Alcotest.test_case "ok" `Quick test_run_ok;
          Alcotest.test_case "crash" `Quick test_run_crash;
          Alcotest.test_case "timeout" `Quick test_run_timeout;
          Alcotest.test_case "retries io" `Quick test_run_retries_io;
          Alcotest.test_case "no retry for crash" `Quick
            test_run_no_retry_for_crash;
          Alcotest.test_case "retries exhausted" `Quick
            test_run_retries_exhausted;
        ] );
      ( "inject",
        [
          Alcotest.test_case "crash site" `Quick test_inject_crash_site;
          Alcotest.test_case "disabled noop" `Quick test_inject_disabled_noop;
          Alcotest.test_case "spec parsing" `Quick test_parse_injection_spec;
          Alcotest.test_case "io spec parsing" `Quick test_parse_io_spec;
          Alcotest.test_case "io fires then disarms" `Quick
            test_inject_io_fires_then_disarms;
          Alcotest.test_case "io recovered by retry" `Quick
            test_inject_io_recovered_by_retry;
        ] );
      ( "termination",
        [
          (* Keep last: sets the sticky process-wide flag. *)
          Alcotest.test_case "request_termination" `Quick
            test_request_termination;
        ] );
    ]
