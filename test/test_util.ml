module Rng = Ndetect_util.Rng
module Bitvec = Ndetect_util.Bitvec

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let sa = List.init 8 (fun _ -> Rng.next_int64 a) in
  let sb = List.init 8 (fun _ -> Rng.next_int64 b) in
  Alcotest.(check bool) "streams differ" true (sa <> sb)

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng ~bound:13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_rng_int_bound_one () =
  let rng = Rng.create ~seed:7 in
  Alcotest.(check int) "bound 1 gives 0" 0 (Rng.int rng ~bound:1)

let test_rng_int_rejects_zero () =
  let rng = Rng.create ~seed:7 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng ~bound:0))

let test_rng_uniformity () =
  (* Chi-squared-ish sanity: each of 8 buckets gets its share. *)
  let rng = Rng.create ~seed:11 in
  let buckets = Array.make 8 0 in
  let draws = 80_000 in
  for _ = 1 to draws do
    let v = Rng.int rng ~bound:8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket near expectation" true
        (abs (c - 10_000) < 500))
    buckets

let test_rng_split_independent () =
  let a = Rng.create ~seed:3 in
  let b = Rng.split a in
  let sa = List.init 8 (fun _ -> Rng.next_int64 a) in
  let sb = List.init 8 (fun _ -> Rng.next_int64 b) in
  Alcotest.(check bool) "streams differ" true (sa <> sb)

let test_rng_copy () =
  let a = Rng.create ~seed:3 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a)
    (Rng.next_int64 b)

let test_rng_shuffle_permutation () =
  let rng = Rng.create ~seed:5 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle_in_place rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

let test_bitvec_basics () =
  let v = Bitvec.create 100 in
  Alcotest.(check int) "empty count" 0 (Bitvec.count v);
  Bitvec.set v 0;
  Bitvec.set v 63;
  Bitvec.set v 99;
  Alcotest.(check int) "count" 3 (Bitvec.count v);
  Alcotest.(check bool) "get 63" true (Bitvec.get v 63);
  Alcotest.(check bool) "get 62" false (Bitvec.get v 62);
  Bitvec.clear v 63;
  Alcotest.(check bool) "cleared" false (Bitvec.get v 63);
  Alcotest.(check (list int)) "to_list" [ 0; 99 ] (Bitvec.to_list v)

let test_bitvec_bounds () =
  let v = Bitvec.create 10 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitvec: index out of bounds")
    (fun () -> ignore (Bitvec.get v 10))

let bitvec_gen =
  QCheck.make
    ~print:(fun (len, xs) ->
      Printf.sprintf "len=%d {%s}" len
        (String.concat ";" (List.map string_of_int xs)))
    QCheck.Gen.(
      int_range 1 300 >>= fun len ->
      list_size (int_range 0 40) (int_range 0 (len - 1)) >|= fun xs ->
      (len, xs))

let pair_gen =
  QCheck.Gen.(
    int_range 1 300 >>= fun len ->
    let idx = list_size (int_range 0 40) (int_range 0 (len - 1)) in
    idx >>= fun a ->
    idx >|= fun b -> (len, a, b))

let bitvec_pair =
  QCheck.make
    ~print:(fun (len, a, b) ->
      Printf.sprintf "len=%d |a|=%d |b|=%d" len (List.length a)
        (List.length b))
    pair_gen

let prop_inter_count =
  QCheck.Test.make ~name:"inter_count = |a ∩ b|" ~count:200 bitvec_pair
    (fun (len, a, b) ->
      let va = Bitvec.of_list len a and vb = Bitvec.of_list len b in
      let expected =
        List.sort_uniq Int.compare a
        |> List.filter (fun x -> List.mem x b)
        |> List.length
      in
      Bitvec.inter_count va vb = expected
      && Bitvec.count (Bitvec.inter va vb) = expected)

let prop_diff_and_union =
  QCheck.Test.make ~name:"set algebra laws" ~count:200 bitvec_pair
    (fun (len, a, b) ->
      let va = Bitvec.of_list len a and vb = Bitvec.of_list len b in
      let u = Bitvec.union va vb and d = Bitvec.diff va vb in
      Bitvec.count u + Bitvec.inter_count va vb
      = Bitvec.count va + Bitvec.count vb
      && Bitvec.count d = Bitvec.diff_count va vb
      && Bitvec.subset d va
      && (not (Bitvec.intersects d vb)) )

let prop_nth_diff =
  QCheck.Test.make ~name:"nth_diff enumerates diff in order" ~count:200
    bitvec_pair (fun (len, a, b) ->
      let va = Bitvec.of_list len a and vb = Bitvec.of_list len b in
      let d = Bitvec.diff va vb in
      let expected = Bitvec.to_list d in
      let got = List.mapi (fun k _ -> Bitvec.nth_diff va vb k) expected in
      got = expected)

let prop_nth_set =
  QCheck.Test.make ~name:"nth_set agrees with to_list" ~count:200 bitvec_gen
    (fun (len, xs) ->
      let v = Bitvec.of_list len xs in
      let expected = Bitvec.to_list v in
      List.mapi (fun k _ -> Bitvec.nth_set v k) expected = expected)

let test_nth_diff_not_found () =
  let a = Bitvec.of_list 10 [ 1; 2 ] and b = Bitvec.of_list 10 [ 2 ] in
  Alcotest.check_raises "exhausted" Not_found (fun () ->
      ignore (Bitvec.nth_diff a b 1))

let test_union_in_place () =
  let a = Bitvec.of_list 80 [ 1; 70 ] and b = Bitvec.of_list 80 [ 2; 70 ] in
  Bitvec.union_in_place a b;
  Alcotest.(check (list int)) "union" [ 1; 2; 70 ] (Bitvec.to_list a)

let test_length_mismatch () =
  let a = Bitvec.create 10 and b = Bitvec.create 11 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitvec: length mismatch")
    (fun () -> ignore (Bitvec.inter_count a b))

(* Pooled allocation: the views behave exactly like independently
   created vectors — all-zero, correct length, and mutation of one
   element never leaks into a neighbour despite the shared backing. *)
let test_create_many () =
  let vs = Bitvec.create_many 5 100 in
  Alcotest.(check int) "count" 5 (Array.length vs);
  Array.iter
    (fun v ->
      Alcotest.(check int) "length" 100 (Bitvec.length v);
      Alcotest.(check bool) "zeroed" true (Bitvec.is_empty v))
    vs;
  Bitvec.set vs.(2) 0;
  Bitvec.set vs.(2) 99;
  Array.iteri
    (fun i v ->
      Alcotest.(check (list int))
        (Printf.sprintf "element %d" i)
        (if i = 2 then [ 0; 99 ] else [])
        (Bitvec.to_list v))
    vs;
  Alcotest.(check int) "empty pool" 0 (Array.length (Bitvec.create_many 0 7))

(* Kernel properties: every fast path (SWAR popcount, De Bruijn ctz
   iteration, early-exit and batched intersection counts, the blocked
   word-major layout) against its naive list-based meaning. *)

let prop_count_naive =
  QCheck.Test.make ~name:"count = naive popcount" ~count:300 bitvec_gen
    (fun (len, xs) ->
      Bitvec.count (Bitvec.of_list len xs)
      = List.length (List.sort_uniq Int.compare xs))

let prop_iter_set_order =
  QCheck.Test.make ~name:"iter_set enumerates sorted members" ~count:300
    bitvec_gen (fun (len, xs) ->
      Bitvec.to_list (Bitvec.of_list len xs)
      = List.sort_uniq Int.compare xs)

let prop_inter_count_upto =
  QCheck.make
    ~print:(fun ((len, a, b), limit) ->
      Printf.sprintf "len=%d |a|=%d |b|=%d limit=%d" len (List.length a)
        (List.length b) limit)
    QCheck.Gen.(pair pair_gen (int_range 0 50))
  |> fun arb ->
  QCheck.Test.make ~name:"inter_count_upto = min(count, limit)" ~count:300 arb
    (fun ((len, a, b), limit) ->
      let va = Bitvec.of_list len a and vb = Bitvec.of_list len b in
      Bitvec.inter_count_upto ~limit va vb
      = min (Bitvec.inter_count va vb) limit)

let family_gen =
  QCheck.make
    ~print:(fun (len, probe, rows) ->
      Printf.sprintf "len=%d |probe|=%d rows=%d" len (List.length probe)
        (List.length rows))
    QCheck.Gen.(
      int_range 1 300 >>= fun len ->
      let idx = list_size (int_range 0 40) (int_range 0 (len - 1)) in
      idx >>= fun probe ->
      list_size (int_range 0 30) idx >|= fun rows -> (len, probe, rows))

let prop_inter_count_many =
  QCheck.Test.make ~name:"inter_count_many = map inter_count" ~count:200
    family_gen (fun (len, probe, rows) ->
      let p = Bitvec.of_list len probe in
      let targets = Array.of_list (List.map (Bitvec.of_list len) rows) in
      Bitvec.inter_count_many p targets
      = Array.map (Bitvec.inter_count p) targets)

let prop_blocked_inter_counts =
  QCheck.make
    ~print:(fun ((len, _, rows), bs) ->
      Printf.sprintf "len=%d rows=%d block_size=%d" len (List.length rows) bs)
    QCheck.Gen.(pair (QCheck.gen family_gen) (int_range 1 9))
  |> fun arb ->
  QCheck.Test.make ~name:"Blocked.inter_counts_into = per-row inter_count"
    ~count:200 arb (fun ((len, probe, rows), block_size) ->
      let p = Bitvec.of_list len probe in
      let vecs = Array.of_list (List.map (Bitvec.of_list len) rows) in
      let packed = Bitvec.Blocked.pack ~block_size vecs in
      let got = Array.make (Array.length vecs) (-1) in
      let dst = Array.make block_size 0 in
      for b = 0 to Bitvec.Blocked.block_count packed - 1 do
        let k = Bitvec.Blocked.inter_counts_into packed ~block:b p dst in
        Array.blit dst 0 got (b * block_size) k
      done;
      Bitvec.Blocked.rows packed = Array.length vecs
      && got = Array.map (Bitvec.inter_count p) vecs)

(* Dense differential oracles: the sparse list generators above rarely
   fill whole words, so the SWAR fast paths and the ragged-last-word
   masking are exercised here against literal [Bitvec.get] bit loops.
   Vectors are ~half-full, reproducible from a (len, seed) pair, and
   lengths concentrate on word boundaries of the 62-bit layout
   (61/62/63/123/124) plus arbitrary sizes. *)

let ragged_lengths = [| 1; 2; 61; 62; 63; 100; 123; 124; 186; 248; 300 |]

let dense_of_seed len seed =
  let rng = Rng.create ~seed in
  let v = Bitvec.create len in
  for i = 0 to len - 1 do
    if Rng.bool rng then Bitvec.set v i
  done;
  v

let dense_pair_gen =
  QCheck.make
    ~print:(fun (len, sa, sb) ->
      Printf.sprintf "len=%d seed_a=%d seed_b=%d" len sa sb)
    QCheck.Gen.(
      let len =
        oneof
          [
            oneofa ragged_lengths;
            int_range 1 300;
          ]
      in
      triple len (int_bound 10_000) (int_bound 10_000))

let naive_inter_count len a b =
  let c = ref 0 in
  for i = 0 to len - 1 do
    if Bitvec.get a i && Bitvec.get b i then incr c
  done;
  !c

(* Property bodies are named so the backend-pinned suite below can run
   the exact same differential checks under each registered kernel. *)

let dense_inter_count_body (len, sa, sb) =
  let a = dense_of_seed len sa and b = dense_of_seed len sb in
  Bitvec.inter_count a b = naive_inter_count len a b

let prop_dense_inter_count =
  QCheck.Test.make ~name:"inter_count = naive get loop (dense)" ~count:300
    dense_pair_gen dense_inter_count_body

let dense_upto_gen =
  QCheck.make
    ~print:(fun ((len, sa, sb), limit) ->
      Printf.sprintf "len=%d seed_a=%d seed_b=%d limit=%d" len sa sb limit)
    QCheck.Gen.(pair (QCheck.gen dense_pair_gen) (int_range 0 305))

let dense_inter_count_upto_body ((len, sa, sb), limit) =
  let a = dense_of_seed len sa and b = dense_of_seed len sb in
  Bitvec.inter_count_upto ~limit a b = min (naive_inter_count len a b) limit

let prop_dense_inter_count_upto =
  QCheck.Test.make ~name:"inter_count_upto = naive get loop (dense)"
    ~count:300 dense_upto_gen dense_inter_count_upto_body

let dense_many_gen =
  QCheck.make
    ~print:(fun (len, sp, rows) ->
      Printf.sprintf "len=%d seed_p=%d rows=%d" len sp rows)
    QCheck.Gen.(
      triple (oneofa ragged_lengths) (int_bound 10_000) (int_range 0 12))

let dense_inter_count_many_body (len, sp, rows) =
  let p = dense_of_seed len sp in
  let targets = Array.init rows (fun r -> dense_of_seed len (r + 17)) in
  Bitvec.inter_count_many p targets
  = Array.map (naive_inter_count len p) targets

let prop_dense_inter_count_many =
  QCheck.Test.make ~name:"inter_count_many = naive get loops (dense)"
    ~count:200 dense_many_gen dense_inter_count_many_body

let dense_blocked_gen =
  QCheck.make
    ~print:(fun (len, sp, rows, bs) ->
      Printf.sprintf "len=%d seed_p=%d rows=%d block_size=%d" len sp rows bs)
    QCheck.Gen.(
      quad (oneofa ragged_lengths) (int_bound 10_000) (int_range 0 12)
        (int_range 1 9))

let dense_blocked_body (len, sp, rows, block_size) =
  let p = dense_of_seed len sp in
  let vecs = Array.init rows (fun r -> dense_of_seed len (r + 31)) in
  let packed = Bitvec.Blocked.pack ~block_size vecs in
  let got = Array.make rows (-1) in
  let dst = Array.make block_size 0 in
  for b = 0 to Bitvec.Blocked.block_count packed - 1 do
    let k = Bitvec.Blocked.inter_counts_into packed ~block:b p dst in
    Array.blit dst 0 got (b * block_size) k
  done;
  got = Array.map (naive_inter_count len p) vecs

let prop_dense_blocked =
  QCheck.Test.make ~name:"Blocked = naive get loops (dense, ragged)"
    ~count:200 dense_blocked_gen dense_blocked_body

(* Empty operands hit the all-zero-word paths and the limit=0 early
   exit; spelled out per ragged length rather than left to chance. *)
let test_intersection_kernels_empty_sets () =
  Array.iter
    (fun len ->
      let empty = Bitvec.create len in
      let dense = dense_of_seed len 5 in
      List.iter
        (fun (label, a, b) ->
          Alcotest.(check int)
            (Printf.sprintf "inter_count %s len=%d" label len)
            0 (Bitvec.inter_count a b);
          Alcotest.(check int)
            (Printf.sprintf "inter_count_upto %s len=%d" label len)
            0
            (Bitvec.inter_count_upto ~limit:3 a b))
        [ ("0∩0", empty, empty); ("0∩d", empty, dense); ("d∩0", dense, empty) ];
      Alcotest.(check int)
        (Printf.sprintf "limit=0 len=%d" len)
        0
        (Bitvec.inter_count_upto ~limit:0 dense dense);
      Alcotest.(check (array int))
        (Printf.sprintf "many vs empties len=%d" len)
        [| 0; 0 |]
        (Bitvec.inter_count_many empty [| dense; empty |]);
      let packed = Bitvec.Blocked.pack ~block_size:2 [| empty; dense |] in
      let dst = Array.make 2 (-1) in
      let k = Bitvec.Blocked.inter_counts_into packed ~block:0 empty dst in
      Alcotest.(check int) (Printf.sprintf "blocked rows len=%d" len) 2 k;
      Alcotest.(check (array int))
        (Printf.sprintf "blocked vs empty probe len=%d" len)
        [| 0; 0 |] dst)
    ragged_lengths;
  (* No rows at all: nothing to count, nothing to pack. *)
  Alcotest.(check (array int))
    "many with zero targets" [||]
    (Bitvec.inter_count_many (dense_of_seed 63 1) [||])

(* Backend pinning: the dense differential properties re-run with each
   registered kernel backend forced — the C stubs must be bit-identical
   to the SWAR reference on ragged lengths, whole-word masks, empty
   sets and the blocked layout — plus a direct swar-vs-c agreement
   check over structured edge inputs and the registry contract
   (select, the "kernel.backend" gauge, unknown names). *)

module Kernel = Ndetect_util.Kernel
module Telemetry = Ndetect_util.Telemetry

let with_backend name f =
  let prev = Kernel.current_name () in
  (match Kernel.select name with
  | Ok () -> ()
  | Error m -> failwith m);
  Fun.protect ~finally:(fun () -> ignore (Kernel.select prev)) f

let backend_props backend =
  let wrap body x = with_backend backend (fun () -> body x) in
  let name s = Printf.sprintf "%s [%s]" s backend in
  [
    QCheck.Test.make
      ~name:(name "inter_count = naive (dense)")
      ~count:200 dense_pair_gen
      (wrap dense_inter_count_body);
    QCheck.Test.make
      ~name:(name "inter_count_upto = naive (dense)")
      ~count:200 dense_upto_gen
      (wrap dense_inter_count_upto_body);
    QCheck.Test.make
      ~name:(name "inter_count_many = naive (dense)")
      ~count:150 dense_many_gen
      (wrap dense_inter_count_many_body);
    QCheck.Test.make
      ~name:(name "Blocked = naive (dense, ragged)")
      ~count:150 dense_blocked_gen
      (wrap dense_blocked_body);
  ]

let test_backend_empty_sets backend () =
  with_backend backend test_intersection_kernels_empty_sets

(* Structured edge inputs — whole-word masks (every bit of the ragged
   last word set), empty sets, half-full vectors, self-intersection —
   evaluated under swar and under c, compared output-for-output. *)
let test_backends_agree () =
  Array.iter
    (fun len ->
      let full = Bitvec.of_list len (List.init len Fun.id) in
      let empty = Bitvec.create len in
      let a = dense_of_seed len 101 and b = dense_of_seed len 202 in
      List.iter
        (fun (label, p, q) ->
          let run () =
            let targets = [| q; p; empty; full |] in
            let packed = Bitvec.Blocked.pack ~block_size:3 targets in
            let dst = Array.make 3 0 in
            let blocked =
              List.concat
                (List.init (Bitvec.Blocked.block_count packed) (fun blk ->
                     let k =
                       Bitvec.Blocked.inter_counts_into packed ~block:blk p dst
                     in
                     Array.to_list (Array.sub dst 0 k)))
            in
            ( Bitvec.count p,
              Bitvec.inter_count p q,
              Bitvec.inter_count_upto ~limit:7 p q,
              Bitvec.inter_count_many p targets,
              blocked )
          in
          let swar = with_backend "swar" run in
          let c = with_backend "c" run in
          Alcotest.(check bool)
            (Printf.sprintf "%s len=%d" label len)
            true (swar = c))
        [
          ("full∩dense", full, a);
          ("dense∩dense", a, b);
          ("empty∩dense", empty, b);
          ("full∩full", full, full);
        ])
    ragged_lengths

let test_backend_registry () =
  List.iteri
    (fun i (name, (module B : Kernel.KERNEL)) ->
      Alcotest.(check string) "registered under its own name" name B.name;
      with_backend name (fun () ->
          Alcotest.(check string) "current_name" name (Kernel.current_name ());
          Alcotest.(check int)
            (Printf.sprintf "gauge tracks %s" name)
            i
            (Telemetry.counter_value "kernel.backend")))
    Kernel.backends;
  let before = Kernel.current_name () in
  (match Kernel.select "no-such-backend" with
  | Ok () -> Alcotest.fail "unknown backend accepted"
  | Error m ->
    Alcotest.(check bool)
      "error lists the registered names" true
      (Helpers.contains_substring m "swar"));
  Alcotest.(check string) "selection unchanged on error" before
    (Kernel.current_name ())

let prop_equal_compare_hash =
  QCheck.make
    ~print:(fun ((l1, x1), (l2, x2)) ->
      Printf.sprintf "len=%d/%d |a|=%d |b|=%d" l1 l2 (List.length x1)
        (List.length x2))
    QCheck.Gen.(pair (QCheck.gen bitvec_gen) (QCheck.gen bitvec_gen))
  |> fun arb ->
  QCheck.Test.make ~name:"equal/compare/hash/content_key consistent" ~count:300
    arb (fun ((l1, x1), (l2, x2)) ->
      let a = Bitvec.of_list l1 x1 and b = Bitvec.of_list l2 x2 in
      let eq = Bitvec.equal a b in
      eq = (Bitvec.compare a b = 0)
      && eq = (Bitvec.content_key a = Bitvec.content_key b)
      && ((not eq) || Bitvec.hash a = Bitvec.hash b))

let prop_equal_reflexive =
  QCheck.Test.make ~name:"equal on copies" ~count:200 bitvec_gen
    (fun (len, xs) ->
      let a = Bitvec.of_list len xs in
      let b = Bitvec.copy a in
      Bitvec.equal a b && Bitvec.compare a b = 0 && Bitvec.hash a = Bitvec.hash b)

module Parallel = Ndetect_util.Parallel

let test_parallel_matches_sequential () =
  let arr = Array.init 1000 Fun.id in
  let f x = (x * x) + 1 in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d" domains)
        (Array.map f arr)
        (Parallel.map_array ~domains f arr))
    [ 1; 2; 3; 7 ]

let test_parallel_small_arrays () =
  Alcotest.(check (array int)) "empty" [||] (Parallel.map_array succ [||]);
  Alcotest.(check (array int)) "singleton" [| 2 |]
    (Parallel.map_array succ [| 1 |])

let test_parallel_init () =
  Alcotest.(check (array int)) "init" [| 0; 2; 4; 6; 8 |]
    (Parallel.init ~domains:2 5 (fun i -> 2 * i))

exception Boom

let test_parallel_propagates_exception () =
  let arr = Array.init 100 Fun.id in
  Alcotest.check_raises "raises" Boom (fun () ->
      ignore
        (Parallel.map_array ~domains:4
           (fun x -> if x = 57 then raise Boom else x)
           arr))

module Uerror = Ndetect_util.Error

let test_try_map_isolates_failures () =
  let arr = Array.init 100 Fun.id in
  let results =
    Parallel.try_map_array ~domains:4
      (fun x -> if x mod 17 = 3 then failwith (string_of_int x) else x + 1)
      arr
  in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v ->
        Alcotest.(check bool) "ok index" true (i mod 17 <> 3);
        Alcotest.(check int) "value" (i + 1) v
      | Error e ->
        Alcotest.(check bool) "error index" true (i mod 17 = 3);
        Alcotest.(check string) "message carried" (string_of_int i)
          e.Uerror.message)
    results

let test_map_array_reraises_lowest_index () =
  (* With several failing items, the raising wrapper must surface the
     lowest-index one regardless of domain scheduling. *)
  let arr = Array.init 200 Fun.id in
  Alcotest.(check bool) "lowest index wins" true
    (try
       ignore
         (Parallel.map_array ~domains:7
            (fun x -> if x = 23 || x = 150 then failwith (string_of_int x) else x)
            arr);
       false
     with Failure m -> m = "23")

(* The core try_map_array contract: an arbitrary failing subset yields
   Error at exactly those indices, Ok everywhere else, for any domain
   count. *)
let try_map_gen =
  QCheck.make
    ~print:(fun (n, domains, fails) ->
      Printf.sprintf "n=%d domains=%d fails={%s}" n domains
        (String.concat ";" (List.map string_of_int fails)))
    QCheck.Gen.(
      int_range 0 64 >>= fun n ->
      int_range 1 8 >>= fun domains ->
      list_size (int_range 0 12) (int_range 0 (max 0 (n - 1)))
      >|= fun fails -> (n, domains, List.sort_uniq Int.compare fails))

let prop_try_map_exact_indices =
  QCheck.Test.make ~name:"try_map_array errors exactly at failing indices"
    ~count:100 try_map_gen (fun (n, domains, fails) ->
      let fails = List.filter (fun i -> i < n) fails in
      let results =
        Parallel.try_map_array ~domains
          (fun x -> if List.mem x fails then failwith "boom" else 2 * x)
          (Array.init n Fun.id)
      in
      Array.length results = n
      && Array.for_all Fun.id
           (Array.mapi
              (fun i r ->
                match r with
                | Ok v -> (not (List.mem i fails)) && v = 2 * i
                | Error e ->
                  List.mem i fails && e.Uerror.kind = Uerror.Invalid_input)
              results))

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "bound one" `Quick test_rng_int_bound_one;
          Alcotest.test_case "bound zero rejected" `Quick
            test_rng_int_rejects_zero;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "shuffle permutes" `Quick
            test_rng_shuffle_permutation;
        ] );
      ( "bitvec",
        [
          Alcotest.test_case "basics" `Quick test_bitvec_basics;
          Alcotest.test_case "bounds" `Quick test_bitvec_bounds;
          Alcotest.test_case "nth_diff not found" `Quick
            test_nth_diff_not_found;
          Alcotest.test_case "union in place" `Quick test_union_in_place;
          Alcotest.test_case "length mismatch" `Quick test_length_mismatch;
          Alcotest.test_case "pooled create_many" `Quick test_create_many;
          Helpers.qcheck prop_inter_count;
          Helpers.qcheck prop_diff_and_union;
          Helpers.qcheck prop_nth_diff;
          Helpers.qcheck prop_nth_set;
        ] );
      ( "bitvec kernels",
        [
          Helpers.qcheck prop_count_naive;
          Helpers.qcheck prop_iter_set_order;
          Helpers.qcheck prop_inter_count_upto;
          Helpers.qcheck prop_inter_count_many;
          Helpers.qcheck prop_blocked_inter_counts;
          Helpers.qcheck prop_dense_inter_count;
          Helpers.qcheck prop_dense_inter_count_upto;
          Helpers.qcheck prop_dense_inter_count_many;
          Helpers.qcheck prop_dense_blocked;
          Alcotest.test_case "empty sets (all kernels)" `Quick
            test_intersection_kernels_empty_sets;
          Helpers.qcheck prop_equal_compare_hash;
          Helpers.qcheck prop_equal_reflexive;
        ] );
      ( "kernel backends",
        List.concat_map
          (fun (name, _) -> List.map Helpers.qcheck (backend_props name))
          Kernel.backends
        @ List.map
            (fun (name, _) ->
              Alcotest.test_case
                (Printf.sprintf "empty sets [%s]" name)
                `Quick (test_backend_empty_sets name))
            Kernel.backends
        @ [
            Alcotest.test_case "swar and c agree on edge inputs" `Quick
              test_backends_agree;
            Alcotest.test_case "registry: select, gauge, unknown name" `Quick
              test_backend_registry;
          ] );
      ( "parallel",
        [
          Alcotest.test_case "matches sequential" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "small arrays" `Quick test_parallel_small_arrays;
          Alcotest.test_case "init" `Quick test_parallel_init;
          Alcotest.test_case "exception propagation" `Quick
            test_parallel_propagates_exception;
          Alcotest.test_case "try_map isolates failures" `Quick
            test_try_map_isolates_failures;
          Alcotest.test_case "lowest failing index re-raised" `Quick
            test_map_array_reraises_lowest_index;
          Helpers.qcheck prop_try_map_exact_indices;
        ] );
    ]
