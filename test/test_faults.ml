module Gate = Ndetect_circuit.Gate
module Netlist = Ndetect_circuit.Netlist
module Line = Ndetect_circuit.Line
module Stuck = Ndetect_faults.Stuck
module Bridge = Ndetect_faults.Bridge
module Naive = Ndetect_sim.Naive
module Bitvec = Ndetect_util.Bitvec
module Example = Ndetect_suite.Example

let test_all_faults_count () =
  let net = Example.circuit () in
  (* 11 lines, two faults each. *)
  Alcotest.(check int) "22 faults" 22 (Array.length (Stuck.all net))

let test_collapse_example () =
  let net = Example.circuit () in
  let collapsed = Stuck.collapse net in
  Alcotest.(check int) "16 collapsed faults" 16 (Array.length collapsed);
  (* The paper's Table 1 indices: i=0 is 1/1, i=1 is 2/0, i=3 is 3/0,
     i=9 is 8/0 (branch 3>11), i=11 is 9/1, i=12 is 10/0, i=14 is 11/0. *)
  let label i = Stuck.to_string net collapsed.(i) in
  Alcotest.(check string) "i=0" "1/1" (label 0);
  Alcotest.(check string) "i=1" "2/0" (label 1);
  Alcotest.(check string) "i=3" "3/0" (label 3);
  Alcotest.(check string) "i=9" "3>11/0" (label 9);
  Alcotest.(check string) "i=11" "9/1" (label 11);
  Alcotest.(check string) "i=12" "10/0" (label 12);
  Alcotest.(check string) "i=14" "11/0" (label 14)

let test_collapse_classes_example () =
  let net = Example.circuit () in
  let classes = Stuck.classes net in
  let sizes =
    Array.to_list classes
    |> List.map (fun (_, members) -> List.length members)
    |> List.sort Int.compare
  in
  (* Three classes of three (AND input s-a-0 chains and OR input s-a-1
     chain), the rest singletons: 13 * 1 + 3 * 3 = 22. *)
  Alcotest.(check (list int)) "class sizes"
    (List.init 13 (fun _ -> 1) @ [ 3; 3; 3 ])
    sizes

(* Equivalence collapsing is semantically sound: every member of a class
   has the same detection set as its representative. *)
let prop_collapse_equivalent =
  QCheck.Test.make ~name:"collapsed classes share detection sets" ~count:40
    Helpers.circuit_arbitrary
    (Helpers.apply_circuit (fun net ->
         let classes = Stuck.classes net in
         Array.for_all
           (fun (rep, members) ->
             let rep_set = Naive.stuck_detection_set net rep in
             List.for_all
               (fun f ->
                 Bitvec.equal rep_set (Naive.stuck_detection_set net f))
               members)
           classes))

let prop_collapse_partition =
  QCheck.Test.make ~name:"classes partition the full fault list" ~count:60
    Helpers.circuit_arbitrary
    (Helpers.apply_circuit (fun net ->
         let classes = Stuck.classes net in
         let members =
           Array.to_list classes |> List.concat_map snd
           |> List.sort Stuck.compare
         in
         let full = Array.to_list (Stuck.all net) |> List.sort Stuck.compare in
         List.equal Stuck.equal members full))

let test_bridge_candidates_example () =
  let net = Example.circuit () in
  let nodes = Bridge.candidate_nodes net in
  Alcotest.(check int) "three multi-input gates" 3 (Array.length nodes);
  let faults = Bridge.enumerate net in
  (* Three non-feedback pairs, four faults each. *)
  Alcotest.(check int) "12 bridges" 12 (Array.length faults);
  (* Fault g0 of the paper is the first enumerated: (9,0,10,1). *)
  Alcotest.(check string) "g0" "(9,0,10,1)"
    (Bridge.to_string net faults.(0));
  Alcotest.(check string) "g6" "(9,1,11,0)"
    (Bridge.to_string net faults.(6))

let test_bridge_feedback_filtered () =
  (* g2 = AND(g1, c) where g1 = OR(a, b): the pair (g1, g2) is a feedback
     pair and must be excluded. *)
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_input b ~name:"a" in
  let b_in = Netlist.Builder.add_input b ~name:"b" in
  let c = Netlist.Builder.add_input b ~name:"c" in
  let g1 =
    Netlist.Builder.add_gate b ~kind:Gate.Or ~fanins:[| a; b_in |] ~name:"g1"
  in
  let g2 =
    Netlist.Builder.add_gate b ~kind:Gate.And ~fanins:[| g1; c |] ~name:"g2"
  in
  Netlist.Builder.set_outputs b [| g2 |];
  let net = Netlist.Builder.finalize b in
  Alcotest.(check bool) "feedback detected" true
    (Bridge.is_feedback net g1 g2);
  Alcotest.(check int) "no bridges" 0 (Array.length (Bridge.enumerate net))

let test_bridge_excludes_single_input_gates () =
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_input b ~name:"a" in
  let b_in = Netlist.Builder.add_input b ~name:"b" in
  let n1 = Netlist.Builder.add_gate b ~kind:Gate.Not ~fanins:[| a |] ~name:"n1" in
  let n2 =
    Netlist.Builder.add_gate b ~kind:Gate.Not ~fanins:[| b_in |] ~name:"n2"
  in
  Netlist.Builder.set_outputs b [| n1; n2 |];
  let net = Netlist.Builder.finalize b in
  Alcotest.(check int) "no candidates" 0
    (Array.length (Bridge.candidate_nodes net));
  Alcotest.(check int) "no bridges" 0 (Array.length (Bridge.enumerate net))

let prop_bridge_four_per_pair =
  QCheck.Test.make ~name:"four bridges per non-feedback pair" ~count:60
    Helpers.circuit_arbitrary
    (Helpers.apply_circuit (fun net ->
         let nodes = Bridge.candidate_nodes net in
         let n = Array.length nodes in
         let pairs = ref 0 in
         for i = 0 to n - 1 do
           for j = i + 1 to n - 1 do
             if not (Bridge.is_feedback net nodes.(i) nodes.(j)) then
               incr pairs
           done
         done;
         Array.length (Bridge.enumerate net) = 4 * !pairs))

let prop_bridge_no_feedback_pairs =
  QCheck.Test.make ~name:"enumerated bridges are non-feedback" ~count:60
    Helpers.circuit_arbitrary
    (Helpers.apply_circuit (fun net ->
         Array.for_all
           (fun (f : Bridge.t) ->
             not (Bridge.is_feedback net f.Bridge.victim f.Bridge.aggressor))
           (Bridge.enumerate net)))

let test_stuck_to_string () =
  let net = Example.circuit () in
  let fault = { Stuck.line = Line.Stem 4; value = true } in
  Alcotest.(check string) "stem label" "9/1" (Stuck.to_string net fault)

let () =
  Alcotest.run "faults"
    [
      ( "stuck",
        [
          Alcotest.test_case "all count" `Quick test_all_faults_count;
          Alcotest.test_case "collapse example (paper indices)" `Quick
            test_collapse_example;
          Alcotest.test_case "collapse classes" `Quick
            test_collapse_classes_example;
          Alcotest.test_case "labels" `Quick test_stuck_to_string;
          Helpers.qcheck prop_collapse_equivalent;
          Helpers.qcheck prop_collapse_partition;
        ] );
      ( "bridge",
        [
          Alcotest.test_case "example candidates" `Quick
            test_bridge_candidates_example;
          Alcotest.test_case "feedback filtered" `Quick
            test_bridge_feedback_filtered;
          Alcotest.test_case "single-input gates excluded" `Quick
            test_bridge_excludes_single_input_gates;
          Helpers.qcheck prop_bridge_four_per_pair;
          Helpers.qcheck prop_bridge_no_feedback_pairs;
        ] );
    ]
