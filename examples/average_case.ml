(* Average-case analysis (Section 3 of the paper): construct K random
   n-detection test sets with Procedure 1 and estimate, for each bridging
   fault that is NOT guaranteed to be detected, the probability p(n, g)
   that an arbitrary n-detection test set detects it.

   Run with: dune exec examples/average_case.exe [-- circuit [K]] *)

module Analysis = Ndetect_core.Analysis
module Detection_table = Ndetect_core.Detection_table
module Worst_case = Ndetect_core.Worst_case
module Procedure1 = Ndetect_core.Procedure1
module Average_case = Ndetect_core.Average_case
module Registry = Ndetect_suite.Registry
module Paper_tables = Ndetect_report.Paper_tables

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "ex4" in
  let k =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 500
  in
  let entry =
    match Registry.find name with
    | Some e -> e
    | None ->
      Printf.eprintf "unknown circuit %s; try one of: %s\n" name
        (String.concat " " (Registry.names ()));
      exit 1
  in
  Printf.printf "Analyzing %s...\n%!" name;
  let a = Analysis.analyze ~name (Registry.circuit entry) in
  (* Faults a 10-detection test set is guaranteed to detect are
     uninteresting here; follow the paper and track only nmin >= 11. *)
  let nmax = 10 in
  let hard = Analysis.hard_faults a ~nmax in
  Printf.printf "%d of %d bridging faults have nmin > %d\n%!"
    (Array.length hard)
    (Detection_table.untargeted_count a.Analysis.table)
    nmax;
  if Array.length hard = 0 then
    print_endline "Nothing to estimate: every fault is guaranteed by n=10."
  else begin
    let outcome =
      Procedure1.run ~report_faults:hard a.Analysis.table
        { Procedure1.seed = 1; set_count = k; nmax;
          mode = Procedure1.Definition1 }
    in
    let row =
      {
        Paper_tables.circuit = name;
        hard_faults = Array.length hard;
        row = Average_case.summarize outcome ~n:nmax;
      }
    in
    print_string (Paper_tables.table5 ~nmax [ row ]);
    print_newline ();
    (* Spotlight the stubborn faults, like the end of Section 3. *)
    let worst_faults =
      Array.to_list hard
      |> List.map (fun gj -> (gj, Procedure1.probability outcome ~n:nmax ~gj))
      |> List.sort (fun (_, p1) (_, p2) -> Float.compare p1 p2)
      |> List.filteri (fun i _ -> i < 5)
    in
    Printf.printf "Lowest detection probabilities (K = %d):\n" k;
    List.iter
      (fun (gj, p) ->
        Printf.printf "  p(%d, %s) = %.3f (nmin = %d)\n" nmax
          (Detection_table.untargeted_label a.Analysis.table gj)
          p
          (Worst_case.nmin a.Analysis.worst gj))
      worst_faults
  end
