(* The analysis generalized to transition-fault n-detection test sets
   (two-pattern tests), per the discussion of extending the framework to
   other fault models. Detection factorizes over (initialization,
   capture), so the pair universe never needs to be materialized.

   Run with: dune exec examples/transition_ndetect.exe [-- circuit] *)

module Analysis = Ndetect_core.Analysis
module Transition_analysis = Ndetect_core.Transition_analysis
module Worst_case = Ndetect_core.Worst_case
module Registry = Ndetect_suite.Registry

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "mc" in
  let net = Registry.circuit (Option.get (Registry.find name)) in
  Printf.printf "circuit: %s\n\n" name;
  (* Stuck-at targets (the paper's setting)... *)
  let stuck = Analysis.analyze ~name net in
  (* ...versus transition-fault targets over two-pattern tests. *)
  let transition = Transition_analysis.compute net in
  Printf.printf "targets: %d stuck-at vs %d transition faults\n"
    stuck.Analysis.summary.Analysis.target_faults
    (Transition_analysis.target_count transition);
  Printf.printf "untargeted bridging faults: %d (same set for both)\n\n"
    (Transition_analysis.untargeted_count transition);
  Printf.printf "%8s  %22s  %22s\n" "n" "stuck-at guaranteed %"
    "transition guaranteed %";
  List.iter
    (fun n ->
      Printf.printf "%8d  %22.2f  %22.2f\n" n
        (Worst_case.percent_below stuck.Analysis.worst n)
        (Transition_analysis.percent_below transition n))
    [ 1; 2; 5; 10; 100; 1000; 10000 ];
  print_newline ();
  (match
     ( Worst_case.max_finite_nmin stuck.Analysis.worst,
       Transition_analysis.max_finite_nmin transition )
   with
  | Some s, Some t ->
    Printf.printf
      "full guarantee needs n = %d (stuck-at) vs n = %d (transition)\n" s t
  | _ -> ());
  print_endline
    "\nThe escape margin of a transition fault is multiplied by the size\n\
     of its initialization set, so guaranteeing untargeted coverage with\n\
     transition-fault n-detection needs dramatically larger n - the\n\
     paper's conclusion that raising n is not an effective lever, sharpened."
