(* Unmodeled-defect diagnosis with a stuck-at dictionary.

   The paper uses four-way bridging faults as surrogates for unmodeled
   defects. Here the roles flip: a bridging "defect" is injected into a
   benchmark, the part fails on an n-detection test set, and the failure
   is diagnosed against the stuck-at dictionary. Higher n gives richer
   responses and sharper diagnoses (more distinguishable fault pairs).

   Run with: dune exec examples/diagnosis_demo.exe [-- circuit] *)

module Netlist = Ndetect_circuit.Netlist
module Line = Ndetect_circuit.Line
module Stuck = Ndetect_faults.Stuck
module Bridge = Ndetect_faults.Bridge
module Ndet_atpg = Ndetect_tgen.Ndet_atpg
module Dictionary = Ndetect_diag.Dictionary
module Registry = Ndetect_suite.Registry

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "mc" in
  let net = Registry.circuit (Option.get (Registry.find name)) in
  let faults = Stuck.collapse net in
  let bridges = Bridge.enumerate net in
  if Array.length bridges = 0 then begin
    print_endline "circuit has no bridging faults";
    exit 0
  end;
  (* The "defect": a four-way bridge, NOT part of the dictionary. *)
  let defect = bridges.(Array.length bridges / 2) in
  Printf.printf "circuit: %s; injected unmodeled defect: bridge %s\n\n" name
    (Bridge.to_string net defect);
  Printf.printf "%3s  %6s  %14s  %8s  %s\n" "n" "tests" "distinguishable"
    "top hit" "top 3 candidates (score)";
  List.iter
    (fun n ->
      let report = Ndet_atpg.generate ~seed:3 net ~n faults in
      let vectors = report.Ndet_atpg.tests in
      let dict = Dictionary.build net ~vectors ~faults in
      let observed = Dictionary.respond_bridge dict defect in
      let verdicts = Dictionary.diagnose dict ~observed in
      let top3 =
        List.filteri (fun i _ -> i < 3) verdicts
        |> List.map (fun v ->
               Printf.sprintf "%s(%.2f)"
                 (Stuck.to_string net (Dictionary.fault dict v.Dictionary.fault_index))
                 v.Dictionary.score)
        |> String.concat " "
      in
      (* A hit: the top candidate sits on the victim line or directly in
         its fanout cone (collapsing may have moved the representative
         downstream). *)
      let victim_cone = Netlist.transitive_fanout net defect.Bridge.victim in
      let top_is_victim =
        match verdicts with
        | v :: _ ->
          let f = Dictionary.fault dict v.Dictionary.fault_index in
          victim_cone.(Line.driver net f.Stuck.line)
        | [] -> false
      in
      Printf.printf "%3d  %6d  %14d  %8s  %s\n%!" n (Array.length vectors)
        (Dictionary.distinguishable_pairs dict)
        (if top_is_victim then "victim" else "-")
        top3)
    [ 1; 2; 5; 10 ];
  print_newline ();
  print_endline
    "The top candidates sit on the bridged lines: the stuck-at dictionary\n\
     localizes the unmodeled defect, and the number of distinguishable\n\
     fault pairs grows with the n-detection level of the test set."
