(* Deterministic n-detection test generation with PODEM, and what the
   paper's analysis says about the result: the generated set's bridging
   fault coverage is bounded below by the worst case and tracks the
   average case. Also reproduces the motivating observation that compact
   n-detection test sets grow roughly linearly with n.

   Run with: dune exec examples/atpg_ndetect.exe [-- circuit] *)

module Analysis = Ndetect_core.Analysis
module Detection_table = Ndetect_core.Detection_table
module Worst_case = Ndetect_core.Worst_case
module Registry = Ndetect_suite.Registry
module Stuck = Ndetect_faults.Stuck
module Ndet_atpg = Ndetect_tgen.Ndet_atpg
module Compact = Ndetect_tgen.Compact
module Bitvec = Ndetect_util.Bitvec

let bridge_coverage table tests =
  let member = Bitvec.of_list (Detection_table.universe table) tests in
  let detected = ref 0 in
  let total = Detection_table.untargeted_count table in
  for gj = 0 to total - 1 do
    if Bitvec.intersects member (Detection_table.untargeted_set table gj)
    then incr detected
  done;
  100.0 *. float_of_int !detected /. float_of_int total

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "mc" in
  let entry =
    match Registry.find name with
    | Some e -> e
    | None ->
      Printf.eprintf "unknown circuit %s\n" name;
      exit 1
  in
  let net = Registry.circuit entry in
  let a = Analysis.analyze ~name net in
  let table = a.Analysis.table in
  let faults =
    Array.init (Detection_table.target_count table)
      (Detection_table.target_fault table)
  in
  Printf.printf
    "%s: %d collapsed stuck-at targets, %d detectable bridging faults\n\n"
    name (Array.length faults)
    (Detection_table.untargeted_count table);
  Printf.printf
    "%2s  %9s  %12s  %11s  %10s\n" "n" "atpg size" "compact size"
    "bridge cov%" "guaranteed%";
  List.iter
    (fun n ->
      (* PODEM-based n-detection generation... *)
      let report = Ndet_atpg.generate ~seed:7 net ~n faults in
      let atpg_tests = Array.to_list report.Ndet_atpg.tests in
      (* ...followed by reverse-order static compaction. *)
      let detects =
        Array.init (Detection_table.target_count table)
          (Detection_table.target_set table)
      in
      let compacted = Compact.reverse_order_pass ~detects ~n atpg_tests in
      let coverage = bridge_coverage table compacted in
      let guaranteed = 100.0 *. Worst_case.coverage_guaranteed a.Analysis.worst ~n in
      Printf.printf "%2d  %9d  %12d  %11.2f  %10.2f\n%!" n
        (List.length atpg_tests) (List.length compacted) coverage guaranteed;
      assert (coverage +. 1e-9 >= guaranteed))
    [ 1; 2; 3; 4; 5; 8; 10 ];
  print_newline ();
  print_endline
    "Note: the measured coverage of each generated set dominates the\n\
     worst-case guarantee, and compact set size grows roughly linearly\n\
     with n, as the paper assumes."
