(* Quickstart: build the paper's Figure 1 circuit by hand, compute its
   detection table, and reproduce the worked example of Section 2 —
   Table 1 and nmin(g0) = 3.

   Run with: dune exec examples/quickstart.exe *)

module Gate = Ndetect_circuit.Gate
module Netlist = Ndetect_circuit.Netlist
module Detection_table = Ndetect_core.Detection_table
module Worst_case = Ndetect_core.Worst_case
module Analysis = Ndetect_core.Analysis
module Paper_tables = Ndetect_report.Paper_tables
module Bitvec = Ndetect_util.Bitvec

let build_figure1 () =
  (* Inputs are numbered 1-4; input 1 is the most significant bit of the
     decimal vector encoding, so vector 6 = 0110 sets inputs 2 and 3. *)
  let b = Netlist.Builder.create () in
  let in1 = Netlist.Builder.add_input b ~name:"1" in
  let in2 = Netlist.Builder.add_input b ~name:"2" in
  let in3 = Netlist.Builder.add_input b ~name:"3" in
  let in4 = Netlist.Builder.add_input b ~name:"4" in
  let g9 = Netlist.Builder.add_gate b ~kind:Gate.And ~fanins:[| in1; in2 |] ~name:"9" in
  let g10 = Netlist.Builder.add_gate b ~kind:Gate.And ~fanins:[| in2; in3 |] ~name:"10" in
  let g11 = Netlist.Builder.add_gate b ~kind:Gate.Or ~fanins:[| in3; in4 |] ~name:"11" in
  Netlist.Builder.set_outputs b [| g9; g10; g11 |];
  Netlist.Builder.finalize b

let () =
  let net = build_figure1 () in
  Format.printf "Circuit: %a@.@." Netlist.pp_stats (Netlist.stats net);

  (* One call computes T(f) for every collapsed stuck-at fault and T(g)
     for every detectable four-way bridging fault. *)
  let analysis = Analysis.analyze ~name:"figure1" net in
  let table = analysis.Analysis.table in
  Printf.printf "Target faults (collapsed stuck-at): %d\n"
    (Detection_table.target_count table);
  Printf.printf "Untargeted faults (4-way bridges):  %d (+%d undetectable)\n\n"
    (Detection_table.untargeted_count table)
    (Detection_table.undetectable_untargeted_count table);

  (* The paper's g0 = (9,0,10,1): forced when line 9 carries 0 while line
     10 carries 1. *)
  let g0 =
    Option.get
      (Detection_table.find_untargeted table ~victim:"9" ~victim_value:false
         ~aggressor:"10" ~aggressor_value:true)
  in
  print_string (Paper_tables.table1 analysis ~gj:g0);

  (* nmin for every bridging fault: the n at which ANY n-detection test
     set is guaranteed to detect it. *)
  print_newline ();
  for gj = 0 to Detection_table.untargeted_count table - 1 do
    Printf.printf "nmin(%-12s) = %d   T = %s\n"
      (Detection_table.untargeted_label table gj)
      (Worst_case.nmin analysis.Analysis.worst gj)
      (Format.asprintf "%a" Bitvec.pp (Detection_table.untargeted_set table gj))
  done
