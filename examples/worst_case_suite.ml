(* Worst-case analysis across the benchmark suite (the experiment behind
   Tables 2 and 3 of the paper): for each circuit, the percentage of
   four-way bridging faults guaranteed to be detected by any n-detection
   test set, for n up to 10, and the distribution of the hard tail.

   Run with: dune exec examples/worst_case_suite.exe [-- tier] *)

module Analysis = Ndetect_core.Analysis
module Worst_case = Ndetect_core.Worst_case
module Registry = Ndetect_suite.Registry
module Paper_tables = Ndetect_report.Paper_tables

let () =
  let tier =
    match Array.to_list Sys.argv with
    | _ :: "medium" :: _ -> Registry.Medium
    | _ :: "large" :: _ -> Registry.Large
    | _ -> Registry.Small
  in
  let entries = Registry.of_tier tier in
  Printf.printf "Analyzing %d circuits...\n%!" (List.length entries);
  let analyses =
    List.map
      (fun e ->
        let a =
          Analysis.analyze ~name:e.Registry.name (Registry.circuit e)
        in
        Printf.printf "  %-10s |F| = %4d  |G| = %6d  max nmin = %s\n%!"
          e.Registry.name a.Analysis.summary.Analysis.target_faults
          a.Analysis.summary.Analysis.untargeted_faults
          (match a.Analysis.summary.Analysis.max_finite_nmin with
          | Some m -> string_of_int m
          | None -> "-");
        a)
      entries
  in
  print_newline ();
  let summaries = List.map (fun a -> a.Analysis.summary) analyses in
  print_string (Paper_tables.table2 summaries);
  print_newline ();
  print_string (Paper_tables.table3 summaries);
  print_newline ();
  (* Figure-2 style histogram for the circuit with the hardest tail. *)
  let hardest =
    List.fold_left
      (fun acc a ->
        let tail = Array.length (Analysis.hard_faults a ~nmax:10) in
        match acc with
        | Some (_, best) when best >= tail -> acc
        | _ -> Some (a, tail))
      None analyses
  in
  match hardest with
  | Some (a, tail) when tail > 0 ->
    Printf.printf "Hard-tail circuit: %s (%d faults need n > 10)\n"
      a.Analysis.name tail;
    print_string (Paper_tables.figure2 a.Analysis.worst ~min_value:11)
  | Some _ | None ->
    print_endline
      "No circuit in this tier has faults requiring n > 10; try `medium`."
