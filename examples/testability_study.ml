(* Structural testability vs the paper's worst-case analysis.

   Two side studies that contextualize nmin:

   1. SCOAP: is a bridge's nmin explained by how structurally hard the
      bridge is to detect? Measurably NO - mean SCOAP effort is nearly
      identical across nmin strata. nmin is a property of how the bridge's
      tests overlap the target faults' test sets (the adversary's
      freedom), not of the bridge's own detectability; this is exactly
      why the paper's analysis cannot be replaced by a testability
      heuristic.

   2. LFSR baseline: pseudorandom patterns (the BIST baseline) reach high
      bridging coverage only slowly compared with deterministic
      n-detection sets of equal size.

   Run with: dune exec examples/testability_study.exe [-- circuit] *)

module Netlist = Ndetect_circuit.Netlist
module Line = Ndetect_circuit.Line
module Scoap = Ndetect_circuit.Scoap
module Stuck = Ndetect_faults.Stuck
module Analysis = Ndetect_core.Analysis
module Detection_table = Ndetect_core.Detection_table
module Worst_case = Ndetect_core.Worst_case
module Test_eval = Ndetect_core.Test_eval
module Lfsr = Ndetect_tgen.Lfsr
module Ndet_atpg = Ndetect_tgen.Ndet_atpg
module Registry = Ndetect_suite.Registry

(* SCOAP effort of a four-way bridge: control both activation values and
   observe the victim. *)
let bridge_effort scoap (table : Detection_table.t) gj =
  match Detection_table.untargeted_fault table gj with
  | Detection_table.Wired_fault _ -> Scoap.infinite
  | Detection_table.Bridge_fault b ->
    let control node value =
      if value then Scoap.cc1 scoap node else Scoap.cc0 scoap node
    in
    control b.Ndetect_faults.Bridge.victim b.Ndetect_faults.Bridge.victim_value
    + control b.Ndetect_faults.Bridge.aggressor
        b.Ndetect_faults.Bridge.aggressor_value
    + Scoap.co scoap b.Ndetect_faults.Bridge.victim

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "bbara" in
  let net = Registry.circuit (Option.get (Registry.find name)) in
  let a = Analysis.analyze ~name net in
  let table = a.Analysis.table in
  let scoap = Scoap.compute net in

  (* --- Study 1: SCOAP effort stratified by nmin --- *)
  let strata = [ (1, 1); (2, 5); (6, max_int) ] in
  Printf.printf "circuit: %s\n\nSCOAP effort of bridging faults by nmin:\n"
    name;
  List.iter
    (fun (lo, hi) ->
      let efforts = ref [] in
      for gj = 0 to Detection_table.untargeted_count table - 1 do
        let v = Worst_case.nmin a.Analysis.worst gj in
        if v >= lo && v <= hi then
          efforts := bridge_effort scoap table gj :: !efforts
      done;
      match !efforts with
      | [] -> ()
      | es ->
        let n = List.length es in
        let mean =
          float_of_int (List.fold_left ( + ) 0 es) /. float_of_int n
        in
        let label =
          if hi = max_int then Printf.sprintf "nmin >= %d" lo
          else if lo = hi then Printf.sprintf "nmin = %d" lo
          else Printf.sprintf "nmin in %d..%d" lo hi
        in
        Printf.printf "  %-14s %6d faults, mean SCOAP effort %.1f\n" label n
          mean)
    strata;
  print_newline ();

  (* --- Study 2: LFSR vs deterministic n-detection sets --- *)
  let faults = Stuck.collapse net in
  let width = Netlist.input_count net in
  Printf.printf
    "bridging coverage: LFSR pseudorandom vs PODEM n-detection sets\n";
  Printf.printf "%6s  %12s  %18s\n" "tests" "LFSR cov%" "n-detect cov%(n)";
  List.iter
    (fun n ->
      let report = Ndet_atpg.generate ~seed:11 net ~n faults in
      let atpg_vectors = report.Ndet_atpg.tests in
      let budget = Array.length atpg_vectors in
      let lfsr_vectors = Lfsr.patterns ~width ~count:budget () in
      let coverage vectors =
        Test_eval.bridge_coverage (Test_eval.evaluate net ~vectors)
      in
      Printf.printf "%6d  %12.2f  %15.2f(%d)\n%!" budget
        (coverage lfsr_vectors)
        (coverage atpg_vectors)
        n)
    [ 1; 2; 5 ];
  print_newline ();
  print_endline
    "Note the SCOAP means barely differ across nmin strata: structural\n\
     testability does not explain which untargeted faults evade\n\
     n-detection sets - the overlap analysis is genuinely needed. And\n\
     deterministic n-detection sets dominate equal-sized pseudorandom\n\
     sets on untargeted coverage."
