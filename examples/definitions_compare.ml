(* Definition 1 vs Definition 2 (Section 4 of the paper): the stricter
   notion of "n different detections" — two tests only count twice when
   their common bits alone do not detect the fault — raises the
   probability that an n-detection test set catches untargeted faults.

   Run with: dune exec examples/definitions_compare.exe [-- circuit [K]] *)

module Analysis = Ndetect_core.Analysis
module Detection_table = Ndetect_core.Detection_table
module Procedure1 = Ndetect_core.Procedure1
module Definition2 = Ndetect_core.Definition2
module Average_case = Ndetect_core.Average_case
module Registry = Ndetect_suite.Registry
module Paper_tables = Ndetect_report.Paper_tables

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "ex4" in
  let k =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 200
  in
  let entry =
    match Registry.find name with
    | Some e -> e
    | None ->
      Printf.eprintf "unknown circuit %s\n" name;
      exit 1
  in
  Printf.printf "Analyzing %s...\n%!" name;
  let a = Analysis.analyze ~name (Registry.circuit entry) in
  let nmax = 10 in
  let hard = Analysis.hard_faults a ~nmax in
  if Array.length hard = 0 then begin
    print_endline "No faults with nmin > 10 in this circuit; try another.";
    exit 0
  end;
  let run mode =
    Procedure1.run ~report_faults:hard a.Analysis.table
      { Procedure1.seed = 1; set_count = k; nmax; mode }
  in
  Printf.printf "Running Procedure 1 three times (K = %d)...\n%!" k;
  let def1 = run Procedure1.Definition1 in
  let def2 = run Procedure1.Definition2 in
  let mop = run Procedure1.Multi_output in
  print_string
    (Paper_tables.table6 ~nmax
       [
         ( name,
           Array.length hard,
           Average_case.summarize def1 ~n:nmax,
           Average_case.summarize def2 ~n:nmax );
       ]);
  print_newline ();
  (* A third counting notion, from the paper's reference [6]: detections
     must reach distinct primary outputs. *)
  Printf.printf
    "expected escapes per arbitrary %d-detection test set:\n\
    \  Definition 1: %.3f\n\
    \  Definition 2: %.3f\n\
    \  Multi-output: %.3f\n\n"
    nmax
    (Average_case.expected_escapes_of def1 ~n:nmax)
    (Average_case.expected_escapes_of def2 ~n:nmax)
    (Average_case.expected_escapes_of mop ~n:nmax);
  (* Definition 2 at work on one concrete fault: show a Def2 chain next
     to the raw Def1 detection count for the same test set. *)
  let table = a.Analysis.table in
  let fi =
    (* a target fault with a large detection set, where Def1 counts
       saturate but Def2 chains stay short *)
    let best = ref 0 in
    for i = 0 to Detection_table.target_count table - 1 do
      if
        Detection_table.target_n table i
        > Detection_table.target_n table !best
      then best := i
    done;
    !best
  in
  let def1_count = Procedure1.detection_count_def1 def2 ~k:0 ~fi in
  let chain = Procedure1.chain_def2 def2 ~k:0 ~fi in
  Printf.printf
    "Fault %s in set T0: %d detecting tests under Definition 1, but only %d \
     pairwise-different detections under Definition 2 (chain: %s)\n"
    (Detection_table.target_label table fi)
    def1_count (List.length chain)
    (String.concat " " (List.map string_of_int chain))
