(* Section 4 of the paper: the exhaustive analysis needs all 2^PI input
   vectors, so for a large design one "partitions the circuit into
   smaller subcircuits and applies the analysis to the subcircuits".

   This example builds a 24-input design (four benchmark cores placed
   side by side, plus two global control inputs mixed into every core's
   outputs), which is far beyond the exhaustive limit as a whole, then
   partitions it into output cones and analyzes each block.

   Run with: dune exec examples/partition_demo.exe *)

module Gate = Ndetect_circuit.Gate
module Netlist = Ndetect_circuit.Netlist
module Analysis = Ndetect_core.Analysis
module Partition = Ndetect_core.Partition
module Registry = Ndetect_suite.Registry
module Paper_tables = Ndetect_report.Paper_tables

(* Instantiate several netlists side by side in one top-level design, with
   [shared] extra global inputs ANDed into the first output of every core
   (so the blocks overlap in a couple of signals, as real partitions do). *)
let stitch ~shared cores =
  let b = Netlist.Builder.create () in
  let global =
    Array.init shared (fun i ->
        Netlist.Builder.add_input b ~name:(Printf.sprintf "glob%d" i))
  in
  let core_inputs =
    List.mapi
      (fun c (name, net) ->
        ignore name;
        Array.map
          (fun pi ->
            Netlist.Builder.add_input b
              ~name:(Printf.sprintf "c%d_%s" c (Netlist.name net pi)))
          (Netlist.inputs net))
      cores
  in
  let outputs = ref [] in
  List.iteri
    (fun c (name, net) ->
      ignore name;
      let inputs = List.nth core_inputs c in
      let mapping = Array.make (Netlist.node_count net) (-1) in
      Array.iteri (fun i pi -> mapping.(pi) <- inputs.(i)) (Netlist.inputs net);
      Array.iter
        (fun g ->
          mapping.(g) <-
            Netlist.Builder.add_gate b
              ~kind:(Netlist.kind net g)
              ~fanins:(Array.map (fun f -> mapping.(f)) (Netlist.fanins net g))
              ~name:(Printf.sprintf "c%d_%s" c (Netlist.name net g)))
        (Netlist.gate_ids net);
      Array.iteri
        (fun k o ->
          if k = 0 && shared > 0 then begin
            (* Gate the first output with the global controls. *)
            let gated =
              Netlist.Builder.add_gate b ~kind:Gate.And
                ~fanins:(Array.append [| mapping.(o) |] global)
                ~name:(Printf.sprintf "c%d_gated" c)
            in
            outputs := gated :: !outputs
          end
          else outputs := mapping.(o) :: !outputs)
        (Netlist.outputs net))
    cores;
  Netlist.Builder.set_outputs b (Array.of_list (List.rev !outputs));
  Netlist.Builder.finalize b

let core name = (name, Registry.circuit (Option.get (Registry.find name)))

let () =
  let design =
    stitch ~shared:2 [ core "lion"; core "mc"; core "train4"; core "bbtas" ]
  in
  let stats = Netlist.stats design in
  Format.printf "top-level design: %a@." Netlist.pp_stats stats;
  Printf.printf
    "exhaustive analysis would need 2^%d = %s vectors - not feasible as a \
     whole\n\n"
    stats.Netlist.inputs_n
    (if stats.Netlist.inputs_n < 63 then
       string_of_int (1 lsl stats.Netlist.inputs_n)
     else "huge");
  let results = Partition.analyze ~max_inputs:8 ~name:"soc" design in
  Printf.printf "partitioned into %d analyzable blocks:\n" (List.length results);
  List.iter
    (fun (block, a) ->
      let s = a.Analysis.summary in
      Printf.printf
        "  %-8s outputs=%-2d support=%-2d |F|=%-4d |G|=%-5d guaranteed at \
         n=10: %.2f%%\n"
        s.Analysis.circuit
        (Array.length block.Partition.outputs)
        (Array.length block.Partition.support)
        s.Analysis.target_faults s.Analysis.untargeted_faults
        (List.assoc 10 s.Analysis.percent_below))
    results;
  print_newline ();
  let combined = Partition.combined_summary ~name:"soc-combined" results in
  print_string (Paper_tables.table2 [ combined ]);
  print_newline ();
  print_endline
    "Bridging faults between nodes of different blocks are outside the\n\
     partitioned analysis - the approximation the paper accepts in\n\
     exchange for tractability on large designs."
